//! The shared decoded-block cache.
//!
//! Blocks are keyed by `(program, entry point)`: a [`ProgramId`] — a
//! content hash of the program image plus the decode-relevant
//! configuration — and the entry `(function, instruction index)`. One
//! cache therefore serves **many machines and many programs**: a corpus
//! service re-running the same image under a new fuel limit, or a second
//! machine of the same program, finds the decode work already done.
//! Within a program the index is a dense per-function table rather than a
//! hash map — a lookup on the block-transition path is three array reads
//! (the engine resolves its program's dense handle once at bind time).
//! Decoded blocks may overlap (jumping into the middle of a previously
//! decoded run simply decodes a new block starting there); this keeps
//! decode single-pass with no leader analysis, exactly like a hardware µop
//! trace cache.
//!
//! Residency is managed by a **segmented LRU** shared across programs:
//! freshly decoded blocks enter a probationary segment and are promoted to
//! a protected segment on their first re-use, so one-shot decode streams
//! (a long straight-line prologue, a cold error path, a sweep of one-run
//! corpus programs) cannot wash a long-lived service's hot loops out of
//! the cache. Capacity pressure evicts one probationary LRU block at a
//! time — never the whole cache. Invalidation after a code write is
//! **range-precise and program-scoped**: every block records the
//! instruction ranges it covers ([`CodeSpan`], inlined leaf bodies
//! included), and only the written program's overlapping blocks die.

use std::collections::HashMap;

use hardbound_core::{MachineConfig, StableHash, FINGERPRINT_VERSION};
use hardbound_isa::{layout, FuncId, Program};

use crate::uop::{CodeSpan, DecodedBlock, Uop};

// Identities used to be mixed through `#[derive(Hash)]`, whose byte
// encoding Rust does not promise across toolchains; now that fingerprints
// are persisted (`HB_STORE_PATH`) and shipped over sockets (`hbserve`),
// they run on the pinned serialization in `hardbound_core::fingerprint`.
pub use hardbound_core::Fnv64;

/// Content-hash identity of a program *as the decoder sees it*: the full
/// program image (functions, entry, globals, data) plus the
/// decode-facing configuration — the HardBound extension
/// (encoding/mode/check-µop ablation) and the metadata path. Two
/// machines with equal `ProgramId`s decode byte-identical blocks and may
/// share them; configurations that differ only in run-time knobs (fuel,
/// call depth, hierarchy geometry) map to the *same* `ProgramId` and
/// reuse each other's decode work.
///
/// The keying is deliberately **conservative**: today's decoder
/// specializes only on whether the extension is present (checked vs raw
/// memory µops), so hashing the full extension config splits some
/// byte-identical µop streams — e.g. the three encodings of one image
/// decode separately. That costs a bounded amount of re-decode across an
/// encoding sweep and in exchange no future decoder specialization
/// (per-encoding check fusion is the obvious one) can silently alias
/// blocks across configurations it has started to distinguish.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(pub u64);

/// Process-local memo of the **stable** program hash (FNV-1a over the
/// assembly listing — see `core::fingerprint`), keyed by the cheap
/// structural `#[derive(Hash)]` walk. Rendering a multi-thousand-line
/// listing per [`ProgramId::of`] call would tax exactly the path the
/// result store exists to make cheap (key computation on warm replays),
/// so each distinct image is rendered once per process. The structural
/// key is process-internal only — nothing derived from it is persisted —
/// and its 64-bit collision exposure matches what the pre-stable
/// `ProgramId` itself carried.
fn stable_program_hash(program: &Program) -> u64 {
    use std::collections::hash_map::Entry;
    use std::hash::{Hash, Hasher};
    use std::sync::{Mutex, OnceLock, PoisonError};

    /// Distinct images memoized before the memo resets (fuzz sweeps over
    /// unbounded generated programs must not leak).
    const MEMO_CAP: usize = 1 << 14;

    let mut fast = Fnv64::default();
    program.hash(&mut fast);
    let fast = fast.finish();

    static MEMO: OnceLock<Mutex<HashMap<u64, u64>>> = OnceLock::new();
    let memo = MEMO.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(&stable) = memo
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&fast)
    {
        return stable;
    }
    // Render outside the lock: a figure grid's parallel compiles must not
    // serialize on each other's listing formatting.
    let mut h = Fnv64::default();
    program.stable_hash(&mut h);
    let stable = h.value();
    let mut memo = memo.lock().unwrap_or_else(PoisonError::into_inner);
    if memo.len() >= MEMO_CAP {
        memo.clear();
    }
    if let Entry::Vacant(slot) = memo.entry(fast) {
        slot.insert(stable);
    }
    stable
}

impl ProgramId {
    /// Fingerprints `program` under `cfg` (see the type docs for what is
    /// — and deliberately is not — part of the identity).
    ///
    /// The hash runs on the **stable serialization**
    /// (`hardbound_core::fingerprint`): the program contributes the
    /// FNV-1a of its assembly listing (memoized per distinct image —
    /// see [`stable_program_hash`]) and the configuration is mixed field
    /// by field, with the format version folded in — so a `ProgramId`
    /// computed by another process, another toolchain, or the far side
    /// of an `hbserve` socket is byte-identical, which is what lets the
    /// result store persist and the wire protocol dedup against it.
    #[must_use]
    pub fn of(program: &Program, cfg: &MachineConfig) -> ProgramId {
        let mut h = Fnv64::default();
        h.mix_u32(FINGERPRINT_VERSION);
        h.mix_u64(stable_program_hash(program));
        cfg.hardbound.stable_hash(&mut h);
        cfg.meta_path.stable_hash(&mut h);
        ProgramId(h.value())
    }

    /// Fingerprints `program` under `cfg` *and* the optimizer setting. The
    /// bounds-check elimination passes rewrite decoded bytes, so optimized
    /// and unoptimized decodes of one image must not alias in a shared
    /// cache. With the optimizer off this is exactly [`ProgramId::of`] —
    /// every identity computed before the optimizer existed (including
    /// persisted result-store keys) is unchanged.
    #[must_use]
    pub fn of_opt(program: &Program, cfg: &MachineConfig, opt: crate::opt::OptConfig) -> ProgramId {
        let base = ProgramId::of(program, cfg);
        if !opt.enabled {
            return base;
        }
        let mut h = Fnv64::default();
        h.mix_u64(base.0);
        // An arbitrary fixed tag naming "optimizer pipeline v1".
        h.mix_u64(0x4842_4f50_5431_0001);
        ProgramId(h.value())
    }
}

/// A decoded basic block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Dense handle of the owning program (see
    /// [`SharedBlockCache::register`]).
    pub prog: u32,
    /// Owning function.
    pub func: FuncId,
    /// Entry instruction index within the function.
    pub entry: u32,
    /// Pre-decoded µops; one per instruction, terminator last. See
    /// [`DecodedBlock::uops`] for the guarded two-stream layout.
    pub uops: Box<[Uop]>,
    /// Instruction ranges this block covers (own function's hull plus the
    /// full body of every inlined leaf callee).
    pub spans: Box<[CodeSpan]>,
    /// `0` for an ordinary block; otherwise the index where the appended
    /// original copy begins (see [`DecodedBlock::fallback`]).
    pub fallback: u32,
    /// Elided-access count per guard-free segment (see
    /// [`DecodedBlock::elided_counts`]).
    pub elided_counts: Box<[u32]>,
}

/// Counters describing the cache's behaviour over its lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Lookups that found a resident decoded block.
    pub hits: u64,
    /// Blocks decoded (== lookup misses).
    pub decoded: u64,
    /// Blocks discarded by capacity eviction (segmented-LRU victims).
    pub evicted: u64,
    /// Blocks discarded by explicit invalidation.
    pub invalidated: u64,
}

impl BlockCacheStats {
    /// Lookup hit ratio in `[0, 1]`; `0` with no lookups.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.decoded;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Accumulates `other` into `self` (the corpus service sums its
    /// per-worker shards this way).
    pub fn absorb(&mut self, other: BlockCacheStats) {
        self.hits += other.hits;
        self.decoded += other.decoded;
        self.evicted += other.evicted;
        self.invalidated += other.invalidated;
    }
}

/// Which segmented-LRU list a resident block lives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    /// Freshly decoded, not yet re-used.
    Probation,
    /// Re-used at least once; evicted only when probation is empty.
    Protected,
}

/// Sentinel for "no slot" in the intrusive lists.
const NONE: u32 = u32::MAX;

/// One slab slot: a resident block threaded onto its segment's intrusive
/// doubly-linked recency list (head = MRU, tail = LRU).
#[derive(Debug)]
struct Slot {
    block: Block,
    seg: Segment,
    prev: u32,
    next: u32,
}

/// Head/tail/length of one segment's recency list.
#[derive(Clone, Copy, Debug)]
struct List {
    head: u32,
    tail: u32,
    len: usize,
}

impl List {
    const EMPTY: List = List {
        head: NONE,
        tail: NONE,
        len: 0,
    };
}

/// One registered program: its dense entry-PC index (the identity lives
/// in the cache's `by_id` map).
#[derive(Debug)]
struct ProgramEntry {
    /// `index[func][pc]` = slot id + 1; `0` = not decoded.
    index: Vec<Vec<u32>>,
}

/// Decoded blocks for any number of programs, indexed by
/// `(program, entry PC)`, with bounded capacity and segmented-LRU
/// replacement shared across all of them.
///
/// Programs are registered once ([`SharedBlockCache::register`]) and
/// addressed by the returned dense handle on the hot path; registration is
/// idempotent per [`ProgramId`], which is how a long-lived cache hands a
/// second run of the same image its warm blocks.
/// [`SharedBlockCache::invalidate_program`] *unregisters*, recycling the
/// handle and the per-instruction index table, so an open-ended sweep
/// that retires programs does not accumulate dead registrations.
#[derive(Debug)]
pub struct SharedBlockCache {
    by_id: HashMap<ProgramId, u32>,
    /// Registered programs by dense handle; unregistered slots are `None`
    /// and recycled through `free_programs`.
    programs: Vec<Option<ProgramEntry>>,
    free_programs: Vec<u32>,
    /// Slab of slots; freed slots are recycled through `free`, so resident
    /// slot ids are stable across unrelated evictions.
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    resident: usize,
    capacity: usize,
    /// Maximum blocks in the protected segment (the classic SLRU ~¾
    /// split); promotion past this demotes the protected LRU back to
    /// probation instead of evicting it.
    protected_cap: usize,
    probation: List,
    protected: List,
    stats: BlockCacheStats,
}

impl SharedBlockCache {
    /// Default capacity in blocks; far beyond any single program image, so
    /// capacity evictions only matter to long-lived corpus services (and
    /// callers that ask for a small cache to exercise eviction).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Creates an empty cache holding at most `capacity` decoded blocks
    /// across all registered programs.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> SharedBlockCache {
        assert!(capacity > 0, "block cache needs room for at least 1 block");
        SharedBlockCache {
            by_id: HashMap::new(),
            programs: Vec::new(),
            free_programs: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            resident: 0,
            capacity,
            protected_cap: capacity * 3 / 4,
            probation: List::EMPTY,
            protected: List::EMPTY,
            stats: BlockCacheStats::default(),
        }
    }

    /// Registers `program` under `pid` and returns its dense handle; a
    /// `pid` seen before returns the existing handle (and its resident
    /// blocks) without touching the shape.
    pub fn register(&mut self, pid: ProgramId, program: &Program) -> u32 {
        if let Some(&h) = self.by_id.get(&pid) {
            // The 64-bit fingerprint is trusted as the identity; at least
            // catch shape-diverging collisions (which would otherwise
            // surface as out-of-bounds panics deep in lookup/insert, or
            // as silently shared blocks) where the check is free.
            debug_assert!(
                {
                    let entry = self.entry(h);
                    entry.index.len() == program.functions.len()
                        && entry
                            .index
                            .iter()
                            .zip(&program.functions)
                            .all(|(per_fn, f)| per_fn.len() == f.insts.len())
                },
                "ProgramId collision: {pid:?} maps to a different image shape"
            );
            return h;
        }
        let entry = ProgramEntry {
            index: program
                .functions
                .iter()
                .map(|f| vec![0; f.insts.len()])
                .collect(),
        };
        let h = match self.free_programs.pop() {
            Some(h) => {
                self.programs[h as usize] = Some(entry);
                h
            }
            None => {
                self.programs.push(Some(entry));
                (self.programs.len() - 1) as u32
            }
        };
        self.by_id.insert(pid, h);
        h
    }

    fn entry(&self, prog: u32) -> &ProgramEntry {
        self.programs[prog as usize]
            .as_ref()
            .expect("registered program")
    }

    fn entry_mut(&mut self, prog: u32) -> &mut ProgramEntry {
        self.programs[prog as usize]
            .as_mut()
            .expect("registered program")
    }

    /// The dense handle for `pid`, if registered.
    #[must_use]
    pub fn handle(&self, pid: ProgramId) -> Option<u32> {
        self.by_id.get(&pid).copied()
    }

    /// Number of currently registered programs.
    #[must_use]
    pub fn program_count(&self) -> usize {
        self.by_id.len()
    }

    fn list_mut(&mut self, seg: Segment) -> &mut List {
        match seg {
            Segment::Probation => &mut self.probation,
            Segment::Protected => &mut self.protected,
        }
    }

    fn slot(&self, id: u32) -> &Slot {
        self.slots[id as usize].as_ref().expect("resident slot")
    }

    fn slot_mut(&mut self, id: u32) -> &mut Slot {
        self.slots[id as usize].as_mut().expect("resident slot")
    }

    /// Unthreads `id` from its segment list.
    fn unlink(&mut self, id: u32) {
        let (seg, prev, next) = {
            let s = self.slot(id);
            (s.seg, s.prev, s.next)
        };
        if prev == NONE {
            self.list_mut(seg).head = next;
        } else {
            self.slot_mut(prev).next = next;
        }
        if next == NONE {
            self.list_mut(seg).tail = prev;
        } else {
            self.slot_mut(next).prev = prev;
        }
        self.list_mut(seg).len -= 1;
    }

    /// Threads `id` onto the MRU end of `seg`.
    fn push_front(&mut self, seg: Segment, id: u32) {
        let head = self.list_mut(seg).head;
        {
            let s = self.slot_mut(id);
            s.seg = seg;
            s.prev = NONE;
            s.next = head;
        }
        if head != NONE {
            self.slot_mut(head).prev = id;
        }
        let list = self.list_mut(seg);
        list.head = id;
        if list.tail == NONE {
            list.tail = id;
        }
        list.len += 1;
    }

    /// Removes the block in slot `id` entirely (index entry, list, slab).
    fn remove(&mut self, id: u32) {
        self.unlink(id);
        let slot = self.slots[id as usize].take().expect("resident slot");
        let b = &slot.block;
        self.entry_mut(b.prog).index[b.func.0 as usize][b.entry as usize] = 0;
        self.free.push(id);
        self.resident -= 1;
    }

    /// Evicts one block to make room: the probationary LRU if any, else
    /// the protected LRU.
    fn evict_one(&mut self) {
        let victim = if self.probation.tail != NONE {
            self.probation.tail
        } else {
            self.protected.tail
        };
        debug_assert_ne!(victim, NONE, "evicting from an empty cache");
        self.remove(victim);
        self.stats.evicted += 1;
    }

    /// Id of the resident block of program handle `prog` decoded at
    /// `(func, pc)`, if any. Counts a hit and touches the block's recency:
    /// probationary blocks are promoted to the protected segment,
    /// protected blocks move to its MRU position. Ids are only stable
    /// until the next insert or invalidation — resolve them with
    /// [`SharedBlockCache::block`] immediately.
    #[inline]
    pub fn lookup(&mut self, prog: u32, func: FuncId, pc: u32) -> Option<usize> {
        let id = self.entry(prog).index[func.0 as usize][pc as usize];
        if id == 0 {
            return None;
        }
        let id = id - 1;
        self.stats.hits += 1;
        self.touch(id);
        Some(id as usize)
    }

    fn touch(&mut self, id: u32) {
        self.unlink(id);
        self.push_front(Segment::Protected, id);
        // Keep the protected segment within its share by demoting its LRU
        // back to probation (it stays resident and ahead of cold blocks).
        while self.protected.len > self.protected_cap.max(1) {
            let lru = self.protected.tail;
            self.unlink(lru);
            self.push_front(Segment::Probation, lru);
        }
    }

    /// Inserts a freshly decoded block for program handle `prog` and
    /// returns its id. Counts a decode; evicts segmented-LRU victims one
    /// at a time when at capacity.
    pub fn insert(&mut self, prog: u32, func: FuncId, entry: u32, decoded: DecodedBlock) -> usize {
        while self.resident >= self.capacity {
            self.evict_one();
        }
        self.stats.decoded += 1;
        let slot = Slot {
            block: Block {
                prog,
                func,
                entry,
                uops: decoded.uops,
                spans: decoded.spans,
                fallback: decoded.fallback,
                elided_counts: decoded.elided_counts,
            },
            seg: Segment::Probation,
            prev: NONE,
            next: NONE,
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(slot);
                id
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        self.push_front(Segment::Probation, id);
        self.entry_mut(prog).index[func.0 as usize][entry as usize] = id + 1;
        self.resident += 1;
        id as usize
    }

    /// The block for an id returned by [`SharedBlockCache::lookup`] /
    /// [`SharedBlockCache::insert`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not resident.
    #[inline]
    #[must_use]
    pub fn block(&self, id: usize) -> &Block {
        &self.slot(id as u32).block
    }

    /// Removes every resident block matching `pred`, counting the removals
    /// as invalidations.
    fn invalidate_matching(&mut self, pred: impl Fn(&Block) -> bool) {
        let victims: Vec<u32> = (0..self.slots.len() as u32)
            .filter(|&id| {
                self.slots[id as usize]
                    .as_ref()
                    .is_some_and(|s| pred(&s.block))
            })
            .collect();
        self.stats.invalidated += victims.len() as u64;
        for id in victims {
            self.remove(id);
        }
    }

    /// Drops every decoded block of program handle `prog` containing
    /// `func`'s code (e.g. after patching a function image), counting them
    /// as invalidated. That includes blocks of *other* functions that
    /// inlined `func` as a straight-line leaf callee — their µop arrays
    /// embed `func`'s decoded body, which the block's [`CodeSpan`]s
    /// record. Other programs' blocks are untouched.
    pub fn invalidate_function(&mut self, prog: u32, func: FuncId) {
        self.invalidate_matching(|b| b.prog == prog && b.spans.iter().any(|s| s.func == func));
    }

    /// Range-precise invalidation: drops exactly program handle `prog`'s
    /// blocks whose covered instruction ranges intersect `[lo, hi)` of
    /// `func` (inlined copies included). Blocks of untouched code — and of
    /// every other program — survive.
    pub fn invalidate_span(&mut self, prog: u32, func: FuncId, lo: u32, hi: u32) {
        self.invalidate_matching(|b| {
            b.prog == prog && b.spans.iter().any(|s| s.overlaps(func, lo, hi))
        });
    }

    /// Range-precise invalidation keyed by *code addresses*: drops program
    /// handle `prog`'s blocks embedding code of any function whose handle
    /// range (`[code_addr(f), code_addr(f) + CODE_STRIDE)`) overlaps the
    /// written byte range `[lo, hi)`. Writes that touch no code — the
    /// common case: every data store — invalidate nothing.
    pub fn invalidate_code_range(&mut self, prog: u32, lo: u32, hi: u32) {
        let funcs = self.entry(prog).index.len() as u32;
        let (code_lo, code_hi) = (layout::CODE_BASE, layout::code_addr(funcs));
        let lo = lo.max(code_lo);
        let hi = hi.min(code_hi);
        if lo >= hi {
            return; // nowhere near code
        }
        let first = (lo - code_lo) / layout::CODE_STRIDE;
        let last = (hi - 1 - code_lo) / layout::CODE_STRIDE;
        self.invalidate_matching(|b| {
            b.prog == prog && b.spans.iter().any(|s| (first..=last).contains(&s.func.0))
        });
    }

    /// Drops every decoded block of the program registered as `pid`
    /// (counting them as invalidated) **and unregisters it** — the handle
    /// and its per-instruction index table are recycled, so a long-lived
    /// cache sweeping an open-ended stream of programs can retire them
    /// without accumulating dead registrations. Returns how many blocks
    /// died; a later run of the image simply re-registers.
    pub fn invalidate_program(&mut self, pid: ProgramId) -> u64 {
        let Some(prog) = self.handle(pid) else {
            return 0;
        };
        let before = self.stats.invalidated;
        self.invalidate_matching(|b| b.prog == prog);
        self.by_id.remove(&pid);
        self.programs[prog as usize] = None;
        self.free_programs.push(prog);
        self.stats.invalidated - before
    }

    /// Drops every decoded block of every program, counting them as
    /// invalidated. Registrations survive.
    pub fn invalidate_all(&mut self) {
        self.stats.invalidated += self.resident as u64;
        self.slots.clear();
        self.free.clear();
        self.resident = 0;
        self.probation = List::EMPTY;
        self.protected = List::EMPTY;
        for entry in self.programs.iter_mut().flatten() {
            for per_fn in &mut entry.index {
                per_fn.fill(0);
            }
        }
    }

    /// Number of resident decoded blocks (across all programs).
    #[must_use]
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Number of resident decoded blocks belonging to `pid`.
    #[must_use]
    pub fn resident_of(&self, pid: ProgramId) -> usize {
        let Some(prog) = self.handle(pid) else {
            return 0;
        };
        self.slots
            .iter()
            .flatten()
            .filter(|s| s.block.prog == prog)
            .count()
    }

    /// Accumulated cache counters.
    #[must_use]
    pub fn stats(&self) -> BlockCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_isa::{FunctionBuilder, Reg};

    fn two_function_program() -> Program {
        let mut a = FunctionBuilder::new("a", 0);
        a.li(Reg::A0, 1);
        a.halt();
        let mut b = FunctionBuilder::new("b", 0);
        b.li(Reg::A0, 2);
        b.ret();
        Program::with_entry(vec![a.finish(), b.finish()])
    }

    fn pid(n: u64) -> ProgramId {
        ProgramId(n)
    }

    fn decoded(spans: &[CodeSpan]) -> DecodedBlock {
        DecodedBlock {
            uops: vec![Uop::Nop, Uop::Ret].into_boxed_slice(),
            spans: spans.to_vec().into_boxed_slice(),
            fallback: 0,
            elided_counts: Box::default(),
        }
    }

    fn own_span(func: FuncId, entry: u32) -> DecodedBlock {
        decoded(&[CodeSpan {
            func,
            lo: entry,
            hi: entry + 2,
        }])
    }

    #[test]
    fn program_id_covers_image_and_decode_config() {
        let p = two_function_program();
        let cfg = MachineConfig::default();
        assert_eq!(ProgramId::of(&p, &cfg), ProgramId::of(&p, &cfg));
        // Run-time knobs do not split the decode identity…
        assert_eq!(
            ProgramId::of(&p, &cfg),
            ProgramId::of(&p, &cfg.clone().with_fuel(10)),
        );
        // …but the HardBound extension (checked vs raw memory µops) does,
        // and so does the image.
        assert_ne!(
            ProgramId::of(&p, &cfg),
            ProgramId::of(&p, &MachineConfig::baseline())
        );
        let mut q = p.clone();
        q.functions[0].name.push('x');
        assert_ne!(ProgramId::of(&p, &cfg), ProgramId::of(&q, &cfg));
    }

    #[test]
    fn register_is_idempotent_per_pid() {
        let p = two_function_program();
        let mut c = SharedBlockCache::new(8);
        let h = c.register(pid(1), &p);
        assert_eq!(c.register(pid(1), &p), h);
        assert_ne!(c.register(pid(2), &p), h);
        assert_eq!(c.program_count(), 2);
    }

    #[test]
    fn insert_then_lookup_hits_per_program() {
        let p = two_function_program();
        let mut c = SharedBlockCache::new(8);
        let pa = c.register(pid(1), &p);
        let pb = c.register(pid(2), &p);
        assert!(c.lookup(pa, FuncId(0), 0).is_none());
        let id = c.insert(pa, FuncId(0), 0, own_span(FuncId(0), 0));
        assert_eq!(c.lookup(pa, FuncId(0), 0), Some(id));
        assert!(
            c.lookup(pb, FuncId(0), 0).is_none(),
            "programs do not alias each other's entries"
        );
        assert_eq!(c.block(id).entry, 0);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().decoded, 1);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_one_block_not_everything() {
        let p = two_function_program();
        let mut c = SharedBlockCache::new(1);
        let h = c.register(pid(1), &p);
        c.insert(h, FuncId(0), 0, own_span(FuncId(0), 0));
        c.insert(h, FuncId(0), 1, own_span(FuncId(0), 1));
        assert_eq!(c.stats().evicted, 1);
        assert_eq!(c.resident(), 1);
        assert!(c.lookup(h, FuncId(0), 0).is_none(), "evicted block is gone");
        assert!(c.lookup(h, FuncId(0), 1).is_some());
    }

    #[test]
    fn reused_blocks_survive_a_cold_decode_stream() {
        // The segmented-LRU point, now across programs: a re-used
        // (promoted) block of one program outlives an arbitrarily long
        // stream of never-reused insertions from *another* program — the
        // corpus-sweep shape a shared cache must not thrash on.
        let mut f = FunctionBuilder::new("big", 0);
        for _ in 0..63 {
            f.li(Reg::A0, 0);
        }
        f.halt();
        let big = Program::with_entry(vec![f.finish()]);
        let mut c = SharedBlockCache::new(4);
        let hot_prog = c.register(pid(1), &big);
        let cold_prog = c.register(pid(2), &big);
        let hot = c.insert(hot_prog, FuncId(0), 0, own_span(FuncId(0), 0));
        assert_eq!(
            c.lookup(hot_prog, FuncId(0), 0),
            Some(hot),
            "promote to protected"
        );
        for e in 1..40 {
            c.insert(cold_prog, FuncId(0), e, own_span(FuncId(0), e));
        }
        assert!(
            c.lookup(hot_prog, FuncId(0), 0).is_some(),
            "hot block must survive the scan: {:?}",
            c.stats()
        );
        assert_eq!(c.resident(), 4);
        assert_eq!(c.stats().evicted, 36);
    }

    #[test]
    fn function_invalidation_is_selective_and_program_scoped() {
        let p = two_function_program();
        let mut c = SharedBlockCache::new(8);
        let pa = c.register(pid(1), &p);
        let pb = c.register(pid(2), &p);
        c.insert(pa, FuncId(0), 0, own_span(FuncId(0), 0));
        c.insert(pa, FuncId(1), 0, own_span(FuncId(1), 0));
        c.insert(pb, FuncId(0), 0, own_span(FuncId(0), 0));
        c.invalidate_function(pa, FuncId(0));
        assert_eq!(c.stats().invalidated, 1);
        assert!(c.lookup(pa, FuncId(0), 0).is_none());
        assert!(c.lookup(pa, FuncId(1), 0).is_some());
        assert!(
            c.lookup(pb, FuncId(0), 0).is_some(),
            "another program's fn#0 block survives"
        );
        c.invalidate_all();
        assert_eq!(c.stats().invalidated, 3);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn invalidation_covers_inlined_leaf_bodies() {
        let p = two_function_program();
        let mut c = SharedBlockCache::new(8);
        let h = c.register(pid(1), &p);
        // A block of fn#0 whose superblock inlined fn#1's body: its spans
        // cover both functions.
        c.insert(
            h,
            FuncId(0),
            0,
            decoded(&[
                CodeSpan {
                    func: FuncId(0),
                    lo: 0,
                    hi: 2,
                },
                CodeSpan {
                    func: FuncId(1),
                    lo: 0,
                    hi: 2,
                },
            ]),
        );
        c.insert(h, FuncId(0), 1, own_span(FuncId(0), 1));
        c.invalidate_function(h, FuncId(1));
        assert_eq!(
            c.stats().invalidated,
            1,
            "the inlining block embeds fn#1's code and must go"
        );
        assert!(c.lookup(h, FuncId(0), 0).is_none());
        assert!(
            c.lookup(h, FuncId(0), 1).is_some(),
            "unrelated blocks survive"
        );
    }

    #[test]
    fn span_invalidation_is_instruction_precise() {
        let mut f = FunctionBuilder::new("wide", 0);
        for _ in 0..7 {
            f.li(Reg::A0, 1);
        }
        f.halt();
        let p = Program::with_entry(vec![f.finish()]);
        let mut c = SharedBlockCache::new(8);
        let h = c.register(pid(1), &p);
        c.insert(h, FuncId(0), 0, own_span(FuncId(0), 0)); // covers [0, 2)
        c.insert(h, FuncId(0), 4, own_span(FuncId(0), 4)); // covers [4, 6)
        c.invalidate_span(h, FuncId(0), 2, 4); // the gap: nothing overlaps
        assert_eq!(c.stats().invalidated, 0);
        c.invalidate_span(h, FuncId(0), 5, 9);
        assert_eq!(c.stats().invalidated, 1);
        assert!(c.lookup(h, FuncId(0), 0).is_some());
        assert!(c.lookup(h, FuncId(0), 4).is_none());
    }

    #[test]
    fn code_range_invalidation_ignores_data_and_other_programs() {
        let p = two_function_program();
        let mut c = SharedBlockCache::new(8);
        let pa = c.register(pid(1), &p);
        let pb = c.register(pid(2), &p);
        c.insert(pa, FuncId(0), 0, own_span(FuncId(0), 0));
        c.insert(pa, FuncId(1), 0, own_span(FuncId(1), 0));
        c.insert(pb, FuncId(1), 0, own_span(FuncId(1), 0));
        // Data writes: heap, globals — zero blocks die.
        c.invalidate_code_range(pa, 0x0100_0000, 0x0100_0040);
        c.invalidate_code_range(pa, layout::GLOBALS_BASE, layout::GLOBALS_BASE + 4);
        assert_eq!(c.stats().invalidated, 0);
        // Overwrite fn#1's handle in program A: exactly A's block dies.
        let f1 = layout::code_addr(1);
        c.invalidate_code_range(pa, f1, f1 + 4);
        assert_eq!(c.stats().invalidated, 1);
        assert!(c.lookup(pa, FuncId(0), 0).is_some());
        assert!(c.lookup(pa, FuncId(1), 0).is_none());
        assert!(
            c.lookup(pb, FuncId(1), 0).is_some(),
            "the write was scoped to program A"
        );
    }

    #[test]
    fn program_invalidation_drops_exactly_that_programs_blocks() {
        let p = two_function_program();
        let mut c = SharedBlockCache::new(8);
        let pa = c.register(pid(1), &p);
        let pb = c.register(pid(2), &p);
        c.insert(pa, FuncId(0), 0, own_span(FuncId(0), 0));
        c.insert(pa, FuncId(1), 0, own_span(FuncId(1), 0));
        c.insert(pb, FuncId(0), 0, own_span(FuncId(0), 0));
        assert_eq!(c.resident_of(pid(1)), 2);
        assert_eq!(c.invalidate_program(pid(1)), 2);
        assert_eq!(c.resident_of(pid(1)), 0);
        assert_eq!(c.resident_of(pid(2)), 1);
        assert_eq!(c.invalidate_program(pid(777)), 0, "unknown pid is a no-op");
        assert!(c.lookup(pb, FuncId(0), 0).is_some());

        // Invalidation unregisters: the handle is recycled and the pid is
        // gone until the image runs again.
        assert_eq!(c.handle(pid(1)), None);
        assert_eq!(c.program_count(), 1);
        let pc2 = c.register(pid(3), &p);
        assert_eq!(pc2, pa, "retired handles are recycled");
        assert_eq!(c.program_count(), 2);
        assert!(c.lookup(pc2, FuncId(0), 0).is_none(), "fresh index");
    }
}
