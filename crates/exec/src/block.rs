//! The decoded-block cache.
//!
//! Blocks are keyed by entry point `(function, instruction index)`. The
//! index is a dense per-function table rather than a hash map — a lookup on
//! the block-transition path is two array reads. Decoded blocks may overlap
//! (jumping into the middle of a previously decoded run simply decodes a
//! new block starting there); this keeps decode single-pass with no leader
//! analysis, exactly like a hardware µop trace cache.
//!
//! Residency is managed by a **segmented LRU**: freshly decoded blocks
//! enter a probationary segment and are promoted to a protected segment on
//! their first re-use, so one-shot decode streams (a long straight-line
//! prologue, a cold error path) cannot wash a long-lived engine's hot
//! loops out of the cache. Capacity pressure evicts one probationary LRU
//! block at a time — never the whole cache, as the old whole-flush did.
//! Invalidation after a code write is **range-precise**: every block
//! records the instruction ranges it covers ([`CodeSpan`], inlined leaf
//! bodies included), and only blocks overlapping the written range die.

use hardbound_isa::{layout, FuncId, Program};

use crate::uop::{CodeSpan, DecodedBlock, Uop};

/// A decoded basic block.
#[derive(Clone, Debug)]
pub struct Block {
    /// Owning function.
    pub func: FuncId,
    /// Entry instruction index within the function.
    pub entry: u32,
    /// Pre-decoded µops; one per instruction, terminator last.
    pub uops: Box<[Uop]>,
    /// Instruction ranges this block covers (own function's hull plus the
    /// full body of every inlined leaf callee).
    pub spans: Box<[CodeSpan]>,
}

/// Counters describing the cache's behaviour over a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Lookups that found a resident decoded block.
    pub hits: u64,
    /// Blocks decoded (== lookup misses).
    pub decoded: u64,
    /// Blocks discarded by capacity eviction (segmented-LRU victims).
    pub evicted: u64,
    /// Blocks discarded by explicit invalidation.
    pub invalidated: u64,
}

impl BlockCacheStats {
    /// Lookup hit ratio in `[0, 1]`; `0` with no lookups.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.decoded;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Which segmented-LRU list a resident block lives on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Segment {
    /// Freshly decoded, not yet re-used.
    Probation,
    /// Re-used at least once; evicted only when probation is empty.
    Protected,
}

/// Sentinel for "no slot" in the intrusive lists.
const NONE: u32 = u32::MAX;

/// One slab slot: a resident block threaded onto its segment's intrusive
/// doubly-linked recency list (head = MRU, tail = LRU).
#[derive(Debug)]
struct Slot {
    block: Block,
    seg: Segment,
    prev: u32,
    next: u32,
}

/// Head/tail/length of one segment's recency list.
#[derive(Clone, Copy, Debug)]
struct List {
    head: u32,
    tail: u32,
    len: usize,
}

impl List {
    const EMPTY: List = List {
        head: NONE,
        tail: NONE,
        len: 0,
    };
}

/// Decoded blocks indexed by entry PC, with bounded capacity and
/// segmented-LRU replacement.
#[derive(Debug)]
pub struct BlockCache {
    /// `index[func][pc]` = slot id + 1; `0` = not decoded.
    index: Vec<Vec<u32>>,
    /// Slab of slots; freed slots are recycled through `free`, so resident
    /// slot ids are stable across unrelated evictions.
    slots: Vec<Option<Slot>>,
    free: Vec<u32>,
    resident: usize,
    capacity: usize,
    /// Maximum blocks in the protected segment (the classic SLRU ~¾
    /// split); promotion past this demotes the protected LRU back to
    /// probation instead of evicting it.
    protected_cap: usize,
    probation: List,
    protected: List,
    stats: BlockCacheStats,
}

impl BlockCache {
    /// Default capacity in blocks; far beyond any single program image, so
    /// capacity evictions only occur when a caller asks for a small cache.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// Creates an empty cache shaped for `program`.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn new(program: &Program, capacity: usize) -> BlockCache {
        assert!(capacity > 0, "block cache needs room for at least 1 block");
        BlockCache {
            index: program
                .functions
                .iter()
                .map(|f| vec![0; f.insts.len()])
                .collect(),
            slots: Vec::new(),
            free: Vec::new(),
            resident: 0,
            capacity,
            protected_cap: capacity * 3 / 4,
            probation: List::EMPTY,
            protected: List::EMPTY,
            stats: BlockCacheStats::default(),
        }
    }

    fn list_mut(&mut self, seg: Segment) -> &mut List {
        match seg {
            Segment::Probation => &mut self.probation,
            Segment::Protected => &mut self.protected,
        }
    }

    fn slot(&self, id: u32) -> &Slot {
        self.slots[id as usize].as_ref().expect("resident slot")
    }

    fn slot_mut(&mut self, id: u32) -> &mut Slot {
        self.slots[id as usize].as_mut().expect("resident slot")
    }

    /// Unthreads `id` from its segment list.
    fn unlink(&mut self, id: u32) {
        let (seg, prev, next) = {
            let s = self.slot(id);
            (s.seg, s.prev, s.next)
        };
        if prev == NONE {
            self.list_mut(seg).head = next;
        } else {
            self.slot_mut(prev).next = next;
        }
        if next == NONE {
            self.list_mut(seg).tail = prev;
        } else {
            self.slot_mut(next).prev = prev;
        }
        self.list_mut(seg).len -= 1;
    }

    /// Threads `id` onto the MRU end of `seg`.
    fn push_front(&mut self, seg: Segment, id: u32) {
        let head = self.list_mut(seg).head;
        {
            let s = self.slot_mut(id);
            s.seg = seg;
            s.prev = NONE;
            s.next = head;
        }
        if head != NONE {
            self.slot_mut(head).prev = id;
        }
        let list = self.list_mut(seg);
        list.head = id;
        if list.tail == NONE {
            list.tail = id;
        }
        list.len += 1;
    }

    /// Removes the block in slot `id` entirely (index entry, list, slab).
    fn remove(&mut self, id: u32) {
        self.unlink(id);
        let slot = self.slots[id as usize].take().expect("resident slot");
        self.index[slot.block.func.0 as usize][slot.block.entry as usize] = 0;
        self.free.push(id);
        self.resident -= 1;
    }

    /// Evicts one block to make room: the probationary LRU if any, else
    /// the protected LRU.
    fn evict_one(&mut self) {
        let victim = if self.probation.tail != NONE {
            self.probation.tail
        } else {
            self.protected.tail
        };
        debug_assert_ne!(victim, NONE, "evicting from an empty cache");
        self.remove(victim);
        self.stats.evicted += 1;
    }

    /// Id of the resident block decoded at `(func, pc)`, if any. Counts a
    /// hit and touches the block's recency: probationary blocks are
    /// promoted to the protected segment, protected blocks move to its MRU
    /// position. Ids are only stable until the next insert or
    /// invalidation — resolve them with [`BlockCache::block`] immediately.
    #[inline]
    pub fn lookup(&mut self, func: FuncId, pc: u32) -> Option<usize> {
        let id = self.index[func.0 as usize][pc as usize];
        if id == 0 {
            return None;
        }
        let id = id - 1;
        self.stats.hits += 1;
        self.touch(id);
        Some(id as usize)
    }

    fn touch(&mut self, id: u32) {
        self.unlink(id);
        self.push_front(Segment::Protected, id);
        // Keep the protected segment within its share by demoting its LRU
        // back to probation (it stays resident and ahead of cold blocks).
        while self.protected.len > self.protected_cap.max(1) {
            let lru = self.protected.tail;
            self.unlink(lru);
            self.push_front(Segment::Probation, lru);
        }
    }

    /// Inserts a freshly decoded block and returns its id. Counts a
    /// decode; evicts segmented-LRU victims one at a time when at
    /// capacity.
    pub fn insert(&mut self, func: FuncId, entry: u32, decoded: DecodedBlock) -> usize {
        while self.resident >= self.capacity {
            self.evict_one();
        }
        self.stats.decoded += 1;
        let slot = Slot {
            block: Block {
                func,
                entry,
                uops: decoded.uops,
                spans: decoded.spans,
            },
            seg: Segment::Probation,
            prev: NONE,
            next: NONE,
        };
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = Some(slot);
                id
            }
            None => {
                self.slots.push(Some(slot));
                (self.slots.len() - 1) as u32
            }
        };
        self.push_front(Segment::Probation, id);
        self.index[func.0 as usize][entry as usize] = id + 1;
        self.resident += 1;
        id as usize
    }

    /// The block for an id returned by [`BlockCache::lookup`] /
    /// [`BlockCache::insert`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is not resident.
    #[inline]
    #[must_use]
    pub fn block(&self, id: usize) -> &Block {
        &self.slot(id as u32).block
    }

    /// Removes every resident block matching `pred`, counting the removals
    /// as invalidations.
    fn invalidate_matching(&mut self, pred: impl Fn(&Block) -> bool) {
        let victims: Vec<u32> = (0..self.slots.len() as u32)
            .filter(|&id| {
                self.slots[id as usize]
                    .as_ref()
                    .is_some_and(|s| pred(&s.block))
            })
            .collect();
        self.stats.invalidated += victims.len() as u64;
        for id in victims {
            self.remove(id);
        }
    }

    /// Drops every decoded block containing `func`'s code (e.g. after
    /// patching a function image), counting them as invalidated. That
    /// includes blocks of *other* functions that inlined `func` as a
    /// straight-line leaf callee — their µop arrays embed `func`'s decoded
    /// body, which the block's [`CodeSpan`]s record.
    pub fn invalidate_function(&mut self, func: FuncId) {
        self.invalidate_matching(|b| b.spans.iter().any(|s| s.func == func));
    }

    /// Range-precise invalidation: drops exactly the blocks whose covered
    /// instruction ranges intersect `[lo, hi)` of `func` (inlined copies
    /// included). Blocks of untouched code survive.
    pub fn invalidate_span(&mut self, func: FuncId, lo: u32, hi: u32) {
        self.invalidate_matching(|b| b.spans.iter().any(|s| s.overlaps(func, lo, hi)));
    }

    /// Range-precise invalidation keyed by *code addresses*: drops the
    /// blocks embedding code of any function whose handle range
    /// (`[code_addr(f), code_addr(f) + CODE_STRIDE)`) overlaps the written
    /// byte range `[lo, hi)`. Writes that touch no code — the common case:
    /// every data store — invalidate nothing, where the old design flushed
    /// every decoded block.
    pub fn invalidate_code_range(&mut self, lo: u32, hi: u32) {
        let (code_lo, code_hi) = (
            layout::CODE_BASE,
            layout::code_addr(self.index.len() as u32),
        );
        let lo = lo.max(code_lo);
        let hi = hi.min(code_hi);
        if lo >= hi {
            return; // nowhere near code
        }
        let first = (lo - code_lo) / layout::CODE_STRIDE;
        let last = (hi - 1 - code_lo) / layout::CODE_STRIDE;
        self.invalidate_matching(|b| b.spans.iter().any(|s| (first..=last).contains(&s.func.0)));
    }

    /// Drops every decoded block, counting them as invalidated.
    pub fn invalidate_all(&mut self) {
        self.stats.invalidated += self.resident as u64;
        self.slots.clear();
        self.free.clear();
        self.resident = 0;
        self.probation = List::EMPTY;
        self.protected = List::EMPTY;
        for per_fn in &mut self.index {
            per_fn.fill(0);
        }
    }

    /// Number of resident decoded blocks.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Accumulated cache counters.
    #[must_use]
    pub fn stats(&self) -> BlockCacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_isa::{FunctionBuilder, Reg};

    fn two_function_program() -> Program {
        let mut a = FunctionBuilder::new("a", 0);
        a.li(Reg::A0, 1);
        a.halt();
        let mut b = FunctionBuilder::new("b", 0);
        b.li(Reg::A0, 2);
        b.ret();
        Program::with_entry(vec![a.finish(), b.finish()])
    }

    fn decoded(spans: &[CodeSpan]) -> DecodedBlock {
        DecodedBlock {
            uops: vec![Uop::Nop, Uop::Ret].into_boxed_slice(),
            spans: spans.to_vec().into_boxed_slice(),
        }
    }

    fn own_span(func: FuncId, entry: u32) -> DecodedBlock {
        decoded(&[CodeSpan {
            func,
            lo: entry,
            hi: entry + 2,
        }])
    }

    #[test]
    fn insert_then_lookup_hits() {
        let p = two_function_program();
        let mut c = BlockCache::new(&p, 8);
        assert!(c.lookup(FuncId(0), 0).is_none());
        let id = c.insert(FuncId(0), 0, own_span(FuncId(0), 0));
        assert_eq!(c.lookup(FuncId(0), 0), Some(id));
        assert_eq!(c.block(id).entry, 0);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().decoded, 1);
        assert!((c.stats().hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_evicts_one_block_not_everything() {
        let p = two_function_program();
        let mut c = BlockCache::new(&p, 1);
        c.insert(FuncId(0), 0, own_span(FuncId(0), 0));
        c.insert(FuncId(0), 1, own_span(FuncId(0), 1));
        assert_eq!(c.stats().evicted, 1);
        assert_eq!(c.resident(), 1);
        assert!(c.lookup(FuncId(0), 0).is_none(), "evicted block is gone");
        assert!(c.lookup(FuncId(0), 1).is_some());
    }

    #[test]
    fn reused_blocks_survive_a_cold_decode_stream() {
        // The segmented-LRU point: a re-used (promoted) block outlives an
        // arbitrarily long stream of never-reused insertions, which a
        // whole-flush (or plain LRU of this size) would have destroyed.
        let mut f = FunctionBuilder::new("big", 0);
        for _ in 0..63 {
            f.li(Reg::A0, 0);
        }
        f.halt();
        let p = Program::with_entry(vec![f.finish()]);
        let mut c = BlockCache::new(&p, 4);
        let hot = c.insert(FuncId(0), 0, own_span(FuncId(0), 0));
        assert_eq!(c.lookup(FuncId(0), 0), Some(hot), "promote to protected");
        for e in 1..40 {
            c.insert(FuncId(0), e, own_span(FuncId(0), e));
        }
        assert!(
            c.lookup(FuncId(0), 0).is_some(),
            "hot block must survive the scan: {:?}",
            c.stats()
        );
        assert_eq!(c.resident(), 4);
        assert_eq!(c.stats().evicted, 36);
    }

    #[test]
    fn function_invalidation_is_selective() {
        let p = two_function_program();
        let mut c = BlockCache::new(&p, 8);
        c.insert(FuncId(0), 0, own_span(FuncId(0), 0));
        c.insert(FuncId(1), 0, own_span(FuncId(1), 0));
        c.invalidate_function(FuncId(0));
        assert_eq!(c.stats().invalidated, 1);
        assert!(c.lookup(FuncId(0), 0).is_none());
        assert!(c.lookup(FuncId(1), 0).is_some());
        c.invalidate_all();
        assert_eq!(c.stats().invalidated, 2);
        assert_eq!(c.resident(), 0);
    }

    #[test]
    fn invalidation_covers_inlined_leaf_bodies() {
        let p = two_function_program();
        let mut c = BlockCache::new(&p, 8);
        // A block of fn#0 whose superblock inlined fn#1's body: its spans
        // cover both functions.
        c.insert(
            FuncId(0),
            0,
            decoded(&[
                CodeSpan {
                    func: FuncId(0),
                    lo: 0,
                    hi: 2,
                },
                CodeSpan {
                    func: FuncId(1),
                    lo: 0,
                    hi: 2,
                },
            ]),
        );
        c.insert(FuncId(0), 1, own_span(FuncId(0), 1));
        c.invalidate_function(FuncId(1));
        assert_eq!(
            c.stats().invalidated,
            1,
            "the inlining block embeds fn#1's code and must go"
        );
        assert!(c.lookup(FuncId(0), 0).is_none());
        assert!(c.lookup(FuncId(0), 1).is_some(), "unrelated blocks survive");
    }

    #[test]
    fn span_invalidation_is_instruction_precise() {
        let mut f = FunctionBuilder::new("wide", 0);
        for _ in 0..7 {
            f.li(Reg::A0, 1);
        }
        f.halt();
        let p = Program::with_entry(vec![f.finish()]);
        let mut c = BlockCache::new(&p, 8);
        c.insert(FuncId(0), 0, own_span(FuncId(0), 0)); // covers [0, 2)
        c.insert(FuncId(0), 4, own_span(FuncId(0), 4)); // covers [4, 6)
        c.invalidate_span(FuncId(0), 2, 4); // the gap: nothing overlaps
        assert_eq!(c.stats().invalidated, 0);
        c.invalidate_span(FuncId(0), 5, 9);
        assert_eq!(c.stats().invalidated, 1);
        assert!(c.lookup(FuncId(0), 0).is_some());
        assert!(c.lookup(FuncId(0), 4).is_none());
    }

    #[test]
    fn code_range_invalidation_ignores_data_addresses() {
        let p = two_function_program();
        let mut c = BlockCache::new(&p, 8);
        c.insert(FuncId(0), 0, own_span(FuncId(0), 0));
        c.insert(FuncId(1), 0, own_span(FuncId(1), 0));
        // Data writes: heap, globals, stack — zero blocks die.
        c.invalidate_code_range(0x0100_0000, 0x0100_0040);
        c.invalidate_code_range(layout::GLOBALS_BASE, layout::GLOBALS_BASE + 4);
        assert_eq!(c.stats().invalidated, 0);
        // Overwrite fn#1's handle: exactly its block dies.
        let f1 = layout::code_addr(1);
        c.invalidate_code_range(f1, f1 + 4);
        assert_eq!(c.stats().invalidated, 1);
        assert!(c.lookup(FuncId(0), 0).is_some());
        assert!(c.lookup(FuncId(1), 0).is_none());
    }
}
