//! The corpus service: a long-lived, cache-warm execution backend.
//!
//! The paper's evaluation is corpus-shaped — hundreds of violation pairs
//! and nine Olden ports re-simulated under every mode × encoding — yet a
//! bare [`Engine`](crate::Engine) treats each run as a throwaway: decode
//! work and results are rediscovered from scratch on every job, every
//! figure, every CI invocation. [`CorpusService`] amortizes both:
//!
//! * a **shared decode cache** — one segmented-LRU
//!   [`SharedBlockCache`] *shard per worker*, so every machine a worker
//!   runs reuses the blocks of every image that worker has decoded before
//!   (no cross-thread locking on the block-transition path), and
//! * a **result store** — a map from `(`[`ProgramId`]`, configuration
//!   fingerprint)` to the full [`RunOutcome`], so re-running a corpus
//!   replays identical cells instead of simulating them. Execution is
//!   deterministic in the key, which makes replay *byte-identical* to
//!   recomputation — pinned by the service differential suite and the
//!   result-store proptests at the workspace root.
//!
//! The **incremental re-run** story falls out of the keying: after one
//! scheme or program changes, only the keys it invalidates miss the store
//! ([`CorpusService::invalidate_program`] drops exactly one image's
//! results and decoded blocks); everything else replays. Batches run on
//! the lock-free [`batch`] scheduler with a deterministic, input-ordered
//! merge of store hits and fresh executions.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use hardbound_core::{stable_fingerprint, Machine, MachineConfig, RunOutcome};
use hardbound_isa::Program;
use hardbound_telemetry::{trace, Field, SpanId, SpanTimer};

use crate::batch;
use crate::block::{BlockCacheStats, ProgramId, SharedBlockCache};
use crate::engine::Engine;
use crate::slru::SlruIndex;

/// Fingerprint of everything *besides the program image* that determines a
/// run's outcome: the full [`MachineConfig`] (hierarchy geometry, fuel,
/// call depth, metadata path, HardBound extension) plus a caller-supplied
/// salt for machine construction the config cannot see (the runtime layer
/// salts with its compiler `Mode`, which decides e.g. whether an object
/// table is attached).
///
/// Computed on the pinned serialization of
/// `hardbound_core::fingerprint` (explicit field-by-field FNV mixing with
/// a format version tag), so the fingerprint is identical across
/// processes and toolchains — the property the persistent store and the
/// `hbserve` protocol key on.
#[must_use]
pub fn config_fingerprint(config: &MachineConfig, salt: u64) -> u64 {
    stable_fingerprint(config, salt)
}

/// A result-store key: the program's decode identity plus the full
/// configuration fingerprint (see [`config_fingerprint`]).
pub type StoreKey = (ProgramId, u64);

/// Counters describing the result store's behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResultStoreStats {
    /// Lookups answered from the store (simulations avoided).
    pub hits: u64,
    /// Lookups that had to execute.
    pub misses: u64,
    /// Outcomes inserted.
    pub stored: u64,
    /// Entries dropped by program invalidation.
    pub invalidated: u64,
    /// Entries dropped by capacity eviction (oldest first).
    pub evicted: u64,
    /// Entries dropped by idle-TTL expiry (see [`ResultStore::set_ttl`]).
    pub expired: u64,
}

/// The program-hash result store: `(ProgramId, config fingerprint)` →
/// the complete [`RunOutcome`] of that cell.
///
/// Residency is **bounded**: the store lives for the whole process inside
/// a long-lived service, so unchecked growth across an open-ended corpus
/// sweep would be a leak. Past [`ResultStore::DEFAULT_CAPACITY`] (or the
/// explicit [`ResultStore::with_capacity`] bound) entries are evicted by
/// **segmented LRU** — the probation/protected scheme of the decoded-block
/// cache ([`crate::slru`]): fresh results sit in a probationary segment
/// and are promoted on their first replay, so a figure grid's re-used
/// cells outlive an arbitrarily long one-shot sweep that a FIFO order
/// would let wash them out.
///
/// For persistence (`hardbound-serve`), the store exposes a write
/// **journal** ([`ResultStore::set_journal`] /
/// [`ResultStore::take_dirty`]) recording freshly inserted keys, a
/// non-counting [`ResultStore::peek`], and [`ResultStore::seed`] for
/// loading entries from disk without perturbing the counters.
#[derive(Debug)]
pub struct ResultStore {
    /// Key → slab slot id.
    map: HashMap<StoreKey, u32>,
    /// Slab of live entries; freed slots recycle through `free`.
    slots: Vec<Option<(StoreKey, RunOutcome)>>,
    free: Vec<u32>,
    recency: SlruIndex,
    capacity: usize,
    /// Last-touched stamp per slab slot (insert, seed or hit refreshes);
    /// only consulted when a TTL is set.
    stamps: Vec<Instant>,
    /// Idle time after which an untouched entry is collectable by
    /// [`ResultStore::gc_expired`]; `None` disables expiry.
    ttl: Option<Duration>,
    stats: ResultStoreStats,
    /// Keys inserted since the last [`ResultStore::take_dirty`] — `Some`
    /// only when a persistence layer enabled journaling, so standalone
    /// stores pay nothing.
    journal: Option<Vec<StoreKey>>,
}

impl Default for ResultStore {
    fn default() -> ResultStore {
        ResultStore::with_capacity(ResultStore::DEFAULT_CAPACITY)
    }
}

impl ResultStore {
    /// Default capacity in stored outcomes — far beyond one full figure
    /// pipeline (a few thousand cells), small enough that a process
    /// sweeping unbounded fresh programs stays bounded.
    pub const DEFAULT_CAPACITY: usize = 1 << 16;

    /// An empty store holding at most `capacity` outcomes.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> ResultStore {
        assert!(capacity > 0, "result store needs room for at least 1 entry");
        ResultStore {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            recency: SlruIndex::new(capacity),
            capacity,
            stamps: Vec::new(),
            ttl: None,
            stats: ResultStoreStats::default(),
            journal: None,
        }
    }

    /// The stored outcome for `key`, if any; counts a hit or a miss and
    /// touches the entry's recency (first replay promotes it to the
    /// protected segment).
    pub fn lookup(&mut self, key: StoreKey) -> Option<RunOutcome> {
        match self.map.get(&key) {
            Some(&id) => {
                self.stats.hits += 1;
                self.recency.touch(id);
                self.stamps[id as usize] = Instant::now();
                let (_, out) = self.slots[id as usize].as_ref().expect("live slot");
                Some(out.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// The stored outcome for `key` without touching counters or recency
    /// (diagnostics and the persistence layer's journal drain).
    #[must_use]
    pub fn peek(&self, key: &StoreKey) -> Option<&RunOutcome> {
        self.map
            .get(key)
            .map(|&id| &self.slots[id as usize].as_ref().expect("live slot").1)
    }

    /// Places `(key, outcome)` into the slab and the maps; the caller has
    /// already ensured the key is absent.
    fn place(&mut self, key: StoreKey, outcome: RunOutcome) {
        let slot = Some((key, outcome));
        let id = match self.free.pop() {
            Some(id) => {
                self.slots[id as usize] = slot;
                self.stamps[id as usize] = Instant::now();
                id
            }
            None => {
                self.slots.push(slot);
                self.stamps.push(Instant::now());
                (self.slots.len() - 1) as u32
            }
        };
        self.map.insert(key, id);
        self.recency.insert(id);
        while self.map.len() > self.capacity {
            let victim = self.recency.victim().expect("store is non-empty");
            self.drop_slot(victim);
            self.stats.evicted += 1;
        }
    }

    /// Removes slot `victim` from the slab, map and recency index.
    fn drop_slot(&mut self, victim: u32) {
        let (key, _) = self.slots[victim as usize].take().expect("live slot");
        self.map.remove(&key);
        self.recency.remove(victim);
        self.free.push(victim);
    }

    /// Stores `outcome` under `key` (last write wins; identical keys can
    /// only ever carry identical outcomes), evicting segmented-LRU
    /// victims past capacity and journaling the key when persistence is
    /// on.
    pub fn insert(&mut self, key: StoreKey, outcome: RunOutcome) {
        self.stats.stored += 1;
        if let Some(journal) = &mut self.journal {
            journal.push(key);
        }
        if let Some(&id) = self.map.get(&key) {
            self.slots[id as usize] = Some((key, outcome));
            self.recency.touch(id);
            self.stamps[id as usize] = Instant::now();
            return;
        }
        self.place(key, outcome);
    }

    /// Loads `(key, outcome)` from a persistent log: like
    /// [`ResultStore::insert`], but neither counted as `stored` nor
    /// journaled — seeded entries are already on disk.
    pub fn seed(&mut self, key: StoreKey, outcome: RunOutcome) {
        if let Some(&id) = self.map.get(&key) {
            self.slots[id as usize] = Some((key, outcome));
            self.stamps[id as usize] = Instant::now();
            return;
        }
        self.place(key, outcome);
    }

    /// Sets the idle TTL: entries untouched (no hit, insert or seed) for
    /// at least `ttl` are dropped by the next [`ResultStore::gc_expired`]
    /// sweep. `None` (the default) disables expiry — capacity eviction is
    /// then the only bound. A long-lived `hbserve` shard sets this from
    /// `HB_STORE_TTL` so one hot week of corpus traffic cannot pin a
    /// month of stale results.
    pub fn set_ttl(&mut self, ttl: Option<Duration>) {
        self.ttl = ttl;
    }

    /// Drops every entry idle for at least the configured TTL, returning
    /// how many died (0 without a TTL). Counted under `expired`, not
    /// `evicted` — distinct pressure, distinct counter.
    pub fn gc_expired(&mut self) -> usize {
        let Some(ttl) = self.ttl else { return 0 };
        let victims: Vec<u32> = (0..self.slots.len() as u32)
            .filter(|&id| {
                self.slots[id as usize].is_some() && self.stamps[id as usize].elapsed() >= ttl
            })
            .collect();
        for &id in &victims {
            self.drop_slot(id);
        }
        self.stats.expired += victims.len() as u64;
        victims.len()
    }

    /// Enables (or disables) the insert journal the persistence layer
    /// drains; flipping it clears any pending keys.
    pub fn set_journal(&mut self, on: bool) {
        self.journal = on.then(Vec::new);
    }

    /// Drains the journal: every key inserted since the last drain, in
    /// insertion order (empty when journaling is off). Keys whose entries
    /// were since evicted or invalidated resolve to `None` under
    /// [`ResultStore::peek`]; skip them.
    pub fn take_dirty(&mut self) -> Vec<StoreKey> {
        match &mut self.journal {
            Some(journal) => std::mem::take(journal),
            None => Vec::new(),
        }
    }

    /// Iterates every live `(key, outcome)` (compaction snapshots).
    pub fn entries(&self) -> impl Iterator<Item = (&StoreKey, &RunOutcome)> {
        self.slots.iter().flatten().map(|(k, o)| (k, o))
    }

    /// Drops every entry of program `pid` — and nothing else — returning
    /// how many died.
    pub fn invalidate_program(&mut self, pid: ProgramId) -> usize {
        let victims: Vec<u32> = (0..self.slots.len() as u32)
            .filter(|&id| {
                self.slots[id as usize]
                    .as_ref()
                    .is_some_and(|((p, _), _)| *p == pid)
            })
            .collect();
        for &id in &victims {
            self.drop_slot(id);
        }
        self.stats.invalidated += victims.len() as u64;
        victims.len()
    }

    /// Number of stored results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> ResultStoreStats {
        self.stats
    }
}

/// One unit of corpus work: a program image, the machine configuration to
/// run it under, a construction salt (see [`config_fingerprint`]) and an
/// opaque tag handed back to the machine builder (the runtime layer passes
/// its compiler `Mode` here).
#[derive(Clone, Debug)]
pub struct Job<T> {
    /// The program image.
    pub program: Program,
    /// Full machine configuration.
    pub config: MachineConfig,
    /// Key salt for builder-side state the config cannot express.
    pub salt: u64,
    /// Opaque context for the machine builder.
    pub tag: T,
}

impl<T> Job<T> {
    /// The result-store key this job executes (or replays) under.
    #[must_use]
    pub fn key(&self) -> (ProgramId, u64) {
        (
            ProgramId::of(&self.program, &self.config),
            config_fingerprint(&self.config, self.salt),
        )
    }
}

/// A point-in-time snapshot of the service's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Result-store behaviour (replays vs executions).
    pub store: ResultStoreStats,
    /// Stored results currently resident.
    pub store_len: usize,
    /// Block-cache behaviour summed over all worker shards.
    pub cache: BlockCacheStats,
    /// Programs registered across all shards (an image a second worker
    /// runs registers again in that worker's shard).
    pub programs: usize,
    /// Decoded blocks resident across all shards.
    pub blocks_resident: usize,
}

/// The long-lived multi-program execution service (see the module docs).
#[derive(Debug)]
pub struct CorpusService {
    shards: Vec<SharedBlockCache>,
    store: ResultStore,
    result_cache: bool,
}

impl CorpusService {
    /// A service with `workers` block-cache shards of default capacity and
    /// the result store enabled.
    #[must_use]
    pub fn new(workers: usize) -> CorpusService {
        CorpusService::with_capacity(workers, SharedBlockCache::DEFAULT_CAPACITY)
    }

    /// [`CorpusService::new`] with an explicit per-shard block capacity
    /// (small capacities exercise eviction under corpus pressure).
    #[must_use]
    pub fn with_capacity(workers: usize, blocks_per_shard: usize) -> CorpusService {
        let workers = workers.max(1);
        CorpusService {
            shards: (0..workers)
                .map(|_| SharedBlockCache::new(blocks_per_shard))
                .collect(),
            store: ResultStore::default(),
            result_cache: true,
        }
    }

    /// Enables or disables the result store (`HB_RESULT_CACHE`). Disabled,
    /// every job executes — the shared decode cache still applies — and
    /// the store is neither consulted nor grown.
    pub fn set_result_cache(&mut self, on: bool) {
        self.result_cache = on;
    }

    /// Whether the result store is consulted.
    #[must_use]
    pub fn result_cache(&self) -> bool {
        self.result_cache
    }

    /// Sets the result store's idle TTL (`HB_STORE_TTL`); expired entries
    /// are garbage-collected at the start of every batch. See
    /// [`ResultStore::set_ttl`].
    pub fn set_ttl(&mut self, ttl: Option<Duration>) {
        self.store.set_ttl(ttl);
    }

    /// Read access to the result store (tests and diagnostics).
    #[must_use]
    pub fn store(&self) -> &ResultStore {
        &self.store
    }

    /// Mutable access to the result store — the persistence layer
    /// (`hardbound-serve`) seeds loaded entries and drains the insert
    /// journal through here.
    #[must_use]
    pub fn store_mut(&mut self) -> &mut ResultStore {
        &mut self.store
    }

    /// Runs `jobs` and returns their outcomes in input order: store hits
    /// replay, misses execute on the per-worker shards via the lock-free
    /// batch scheduler, and fresh outcomes are stored for next time.
    /// Duplicate keys *within* the batch execute once and replay for the
    /// other occurrences (counted as store hits). `build` constructs the
    /// machine for a missing cell (attach object tables etc. according to
    /// the job's tag).
    pub fn run_batch<T, F>(&mut self, jobs: &[Job<T>], build: F) -> Vec<RunOutcome>
    where
        T: Sync,
        F: Fn(Program, MachineConfig, &T) -> Machine + Sync,
    {
        if self.result_cache {
            self.store.gc_expired();
        }
        // Under `HB_TRACE` each batch is a root span with two stamped
        // children: the store-lookup sweep and the parallel execution of
        // the misses.
        let batch_timer =
            trace::enabled().then(|| SpanTimer::start(trace::new_trace(), SpanId::NONE, "batch"));
        let lookup_timer = batch_timer
            .as_ref()
            .map(|b| SpanTimer::start(b.trace(), b.span(), "store_lookup"));
        let keys: Vec<(ProgramId, u64)> = jobs.iter().map(Job::key).collect();
        let mut results: Vec<Option<RunOutcome>> = vec![None; jobs.len()];
        let mut missing: Vec<usize> = Vec::new();
        let mut first_of: HashMap<(ProgramId, u64), usize> = HashMap::new();
        let mut replay_of: Vec<Option<usize>> = vec![None; jobs.len()];
        for (i, &key) in keys.iter().enumerate() {
            // Approximate-mode jobs (`HierPath::Sampled`) are excluded from
            // every identity path: their stall estimates share a stable
            // fingerprint with the exact twins (the fingerprint deliberately
            // covers only simulated-hardware fields), so replaying an exact
            // outcome for them — or worse, storing an estimate where an
            // exact run would later replay it — would corrupt the store's
            // byte-identity contract. They always execute, and never insert.
            let identity = self.result_cache && !jobs[i].config.hier_path.is_sampled();
            match identity.then(|| self.store.lookup(key)).flatten() {
                Some(out) => results[i] = Some(out),
                None if identity => match first_of.get(&key) {
                    // A duplicate of a cell already executing in this
                    // batch: replay its outcome instead of re-simulating.
                    // The store lookup above counted it as a miss;
                    // reclassify, since no simulation happens for it.
                    Some(&j) => {
                        self.store.stats.misses -= 1;
                        self.store.stats.hits += 1;
                        replay_of[i] = Some(j);
                    }
                    None => {
                        first_of.insert(key, i);
                        missing.push(i);
                    }
                },
                None => missing.push(i),
            }
        }
        if let Some(t) = lookup_timer {
            t.emit(vec![
                ("jobs".to_owned(), Field::from(jobs.len() as u64)),
                ("missing".to_owned(), Field::from(missing.len() as u64)),
            ]);
        }
        let exec_timer = batch_timer
            .as_ref()
            .map(|b| SpanTimer::start(b.trace(), b.span(), "batch_exec"));
        let fresh = batch::map_with_states(&missing, &mut self.shards, |shard, _, &i| {
            let job = &jobs[i];
            let machine = build(job.program.clone(), job.config.clone(), &job.tag);
            Engine::with_shared_cache(machine, shard).run()
        });
        if let Some(t) = exec_timer {
            t.emit(vec![(
                "executed".to_owned(),
                Field::from(missing.len() as u64),
            )]);
        }
        if let Some(t) = batch_timer {
            t.emit(vec![("jobs".to_owned(), Field::from(jobs.len() as u64))]);
        }
        for (&i, out) in missing.iter().zip(fresh) {
            if self.result_cache && !jobs[i].config.hier_path.is_sampled() {
                self.store.insert(keys[i], out.clone());
            }
            results[i] = Some(out);
        }
        for i in 0..jobs.len() {
            if let Some(j) = replay_of[i] {
                results[i] = results[j].clone();
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every job resolved"))
            .collect()
    }

    /// [`CorpusService::run_batch`] for a single job.
    pub fn run_one<T, F>(&mut self, job: &Job<T>, build: F) -> RunOutcome
    where
        T: Sync,
        F: Fn(Program, MachineConfig, &T) -> Machine + Sync,
    {
        self.run_batch(std::slice::from_ref(job), build)
            .pop()
            .expect("one job, one outcome")
    }

    /// Invalidates one program image everywhere: its stored results (every
    /// configuration) and its decoded blocks in every shard. Other
    /// programs' keys are untouched — this is the incremental-re-run
    /// primitive: after mutating one program, re-running the corpus
    /// executes only its cells and replays the rest.
    ///
    /// Returns `(stored results dropped, decoded blocks dropped)`.
    pub fn invalidate_program(&mut self, pid: ProgramId) -> (usize, u64) {
        let results = self.store.invalidate_program(pid);
        let blocks = self
            .shards
            .iter_mut()
            .map(|s| s.invalidate_program(pid))
            .sum();
        (results, blocks)
    }

    /// Snapshot of the service's counters (store + shards).
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let mut cache = BlockCacheStats::default();
        let mut programs = 0;
        let mut blocks_resident = 0;
        for s in &self.shards {
            cache.absorb(s.stats());
            programs += s.program_count();
            blocks_resident += s.resident();
        }
        ServiceStats {
            store: self.store.stats(),
            store_len: self.store.len(),
            cache,
            programs,
            blocks_resident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_isa::{CmpOp, FunctionBuilder, Program, Reg};

    fn counting_program(limit: i32) -> Program {
        let mut f = FunctionBuilder::new("main", 0);
        f.li(Reg::A0, 0);
        let head = f.bind_label();
        f.addi(Reg::A0, Reg::A0, 1);
        let done = f.new_label();
        f.branch(CmpOp::Ge, Reg::A0, limit, done);
        f.jump(head);
        f.bind(done);
        f.li(Reg::A0, 0);
        f.halt();
        Program::with_entry(vec![f.finish()])
    }

    fn job(limit: i32, fuel: u64) -> Job<()> {
        Job {
            program: counting_program(limit),
            config: MachineConfig::default().with_fuel(fuel),
            salt: 0,
            tag: (),
        }
    }

    fn build(p: Program, cfg: MachineConfig, (): &()) -> Machine {
        Machine::new(p, cfg)
    }

    #[test]
    fn warm_batch_replays_from_the_store() {
        let jobs: Vec<Job<()>> = (0..8).map(|k| job(10 + k, 1_000_000)).collect();
        let mut svc = CorpusService::new(4);
        let cold = svc.run_batch(&jobs, build);
        let after_cold = svc.stats();
        assert_eq!(after_cold.store.hits, 0);
        assert_eq!(after_cold.store.misses, 8);
        assert_eq!(after_cold.store_len, 8);
        let warm = svc.run_batch(&jobs, build);
        assert_eq!(cold, warm, "replay must be byte-identical");
        let after_warm = svc.stats();
        assert_eq!(after_warm.store.hits, 8, "warm run is pure replay");
        assert_eq!(after_warm.store.misses, 8, "no new executions");
        assert_eq!(
            after_warm.cache.decoded, after_cold.cache.decoded,
            "no new decode work either"
        );
    }

    #[test]
    fn distinct_configs_are_distinct_cells() {
        let mut svc = CorpusService::new(1);
        let a = job(10, 1_000_000);
        let mut b = job(10, 1_000_000);
        b.config = b.config.clone().with_fuel(999_999);
        assert_ne!(a.key(), b.key(), "fuel is part of the result identity");
        assert_eq!(
            a.key().0,
            b.key().0,
            "…but not of the decode identity (blocks are shared)"
        );
        svc.run_one(&a, build);
        svc.run_one(&b, build);
        assert_eq!(svc.stats().store_len, 2);
        assert!(svc.stats().cache.decoded > 0);
        // The same image under both fuels decoded once.
        assert_eq!(svc.stats().programs, 1);
    }

    #[test]
    fn salt_splits_otherwise_identical_cells() {
        let a = job(10, 1_000_000);
        let mut b = job(10, 1_000_000);
        b.salt = 1;
        assert_ne!(a.key(), b.key());
    }

    #[test]
    fn result_cache_off_executes_every_time() {
        let jobs = vec![job(10, 1_000_000)];
        let mut svc = CorpusService::new(2);
        svc.set_result_cache(false);
        let first = svc.run_batch(&jobs, build);
        let second = svc.run_batch(&jobs, build);
        assert_eq!(first, second);
        let s = svc.stats();
        assert_eq!(s.store_len, 0, "store is bypassed entirely");
        assert_eq!(s.store.hits, 0);
        assert!(
            s.cache.hits > 0,
            "the shared decode cache still serves the second run: {s:?}"
        );
    }

    #[test]
    fn sampled_jobs_bypass_the_result_store_entirely() {
        use hardbound_core::HierPath;
        let mut svc = CorpusService::new(2);
        let exact = job(10, 1_000_000);
        let mut sampled = exact.clone();
        sampled.config = sampled.config.clone().with_hier_path(HierPath::sampled(8));
        // The exact and sampled configs deliberately share a fingerprint…
        assert_eq!(exact.key(), sampled.key());

        // …so a sampled run right after an exact one must not replay the
        // exact outcome (it executes), and must not overwrite the store.
        let exact_out = svc.run_one(&exact, build);
        let before = svc.stats().store;
        let sampled_out = svc.run_one(&sampled, build);
        let after = svc.stats().store;
        assert_eq!(after.hits, before.hits, "sampled job never replays");
        assert_eq!(after.stored, before.stored, "sampled job never stores");
        assert_eq!(sampled_out.exit_code, exact_out.exit_code);

        // A cold store stays cold across a sampled batch, including
        // intra-batch duplicates — both execute.
        let mut cold = CorpusService::new(2);
        let outs = cold.run_batch(&[sampled.clone(), sampled.clone()], build);
        assert_eq!(outs[0], outs[1]);
        assert_eq!(cold.stats().store_len, 0);
        assert_eq!(cold.stats().store.hits, 0);

        // And the exact cell is still replayable afterwards.
        let replay = svc.run_one(&exact, build);
        assert_eq!(replay, exact_out, "exact entry undisturbed");
    }

    #[test]
    fn store_capacity_evicts_untouched_oldest_first() {
        let mut store = ResultStore::with_capacity(2);
        let out = |limit| {
            let mut svc = CorpusService::new(1);
            svc.run_one(&job(limit, 1_000_000), build)
        };
        let keys: Vec<StoreKey> = (0..3).map(|k| job(10 + k, 1_000_000).key()).collect();
        for (k, &key) in keys.iter().enumerate() {
            store.insert(key, out(10 + k as i32));
        }
        // Never-replayed entries are all probationary, so eviction order
        // degrades to insertion order: the oldest insert dies first.
        assert_eq!(store.len(), 2, "capacity bound holds");
        assert_eq!(store.stats().evicted, 1);
        assert!(store.lookup(keys[0]).is_none(), "oldest entry evicted");
        assert!(store.lookup(keys[1]).is_some());
        assert!(store.lookup(keys[2]).is_some());
        // Re-insertion after invalidation enters probation: with keys[1]
        // and keys[2] protected by their replays above, the fresh insert
        // beyond capacity evicts the probationary re-insert, not them.
        store.invalidate_program(keys[1].0);
        store.insert(keys[0], out(10));
        assert_eq!(store.len(), 2);
        let fresh = job(99, 1_000_000).key();
        store.insert(fresh, out(99));
        assert_eq!(store.stats().evicted, 2);
        assert!(
            store.lookup(keys[2]).is_some(),
            "replayed (protected) entry survives"
        );
        assert!(
            store.lookup(keys[0]).is_none(),
            "the probationary re-insert is the victim"
        );
        assert!(store.lookup(fresh).is_some());
    }

    /// The segmented-LRU hit-rate regression test: a replayed (hot) cell
    /// must survive an arbitrarily long one-shot sweep that exceeds the
    /// store's capacity many times over — the exact pattern the old FIFO
    /// order thrashed on (the hot cell aged to the front and died after
    /// `capacity` fresh inserts, taking its warm replay with it).
    #[test]
    fn replayed_cells_survive_a_one_shot_sweep() {
        let mut store = ResultStore::with_capacity(8);
        let mut svc = CorpusService::new(1);
        let hot = job(10, 1_000_000);
        let hot_out = svc.run_one(&hot, build);
        store.insert(hot.key(), hot_out.clone());
        assert_eq!(store.lookup(hot.key()), Some(hot_out.clone()), "promote");
        for k in 0..64 {
            // 8× capacity of never-replayed sweep cells.
            store.insert(job(100 + k, 1_000_000).key(), hot_out.clone());
        }
        assert_eq!(
            store.lookup(hot.key()),
            Some(hot_out),
            "hot cell must out-live the sweep: {:?}",
            store.stats()
        );
        assert_eq!(store.len(), 8);
        assert_eq!(store.stats().evicted, 64 - 7);
        assert_eq!(store.stats().hits, 2, "both hot probes hit");
        assert_eq!(store.stats().misses, 0, "a 100% hot-cell hit rate");
    }

    #[test]
    fn journal_records_inserts_not_seeds() {
        let mut store = ResultStore::with_capacity(8);
        let out = {
            let mut svc = CorpusService::new(1);
            svc.run_one(&job(10, 1_000_000), build)
        };
        let a = job(10, 1_000_000).key();
        let b = job(11, 1_000_000).key();
        store.insert(a, out.clone());
        assert!(
            store.take_dirty().is_empty(),
            "journaling off: nothing recorded"
        );
        store.set_journal(true);
        store.seed(b, out.clone());
        assert!(store.take_dirty().is_empty(), "seeds are already on disk");
        store.insert(a, out.clone());
        store.insert(b, out.clone());
        assert_eq!(store.take_dirty(), vec![a, b]);
        assert!(store.take_dirty().is_empty(), "drain empties the journal");
        assert_eq!(store.peek(&a), Some(&out), "peek is count-free");
        let stats = store.stats();
        assert_eq!(stats.hits + stats.misses, 0, "peek/seed never count");
    }

    #[test]
    fn ttl_expires_idle_entries_and_none_disables_expiry() {
        // A zero TTL makes every entry expired at the next sweep —
        // deterministic without sleeping.
        let mut store = ResultStore::with_capacity(8);
        let out = {
            let mut svc = CorpusService::new(1);
            svc.run_one(&job(10, 1_000_000), build)
        };
        let a = job(10, 1_000_000).key();
        let b = job(11, 1_000_000).key();
        store.insert(a, out.clone());
        store.insert(b, out.clone());
        assert_eq!(store.gc_expired(), 0, "no TTL, no expiry");
        store.set_ttl(Some(Duration::from_secs(3600)));
        assert_eq!(store.gc_expired(), 0, "nothing idle for an hour yet");
        store.set_ttl(Some(Duration::ZERO));
        assert_eq!(store.gc_expired(), 2, "zero TTL expires everything");
        assert_eq!(store.len(), 0);
        let stats = store.stats();
        assert_eq!(stats.expired, 2);
        assert_eq!(stats.evicted, 0, "expiry is not capacity eviction");
    }

    #[test]
    fn service_gc_runs_at_batch_start() {
        let jobs = vec![job(10, 1_000_000)];
        let mut svc = CorpusService::new(1);
        svc.set_ttl(Some(Duration::ZERO));
        svc.run_batch(&jobs, build);
        assert_eq!(svc.stats().store_len, 1, "the fresh result is stored");
        // The next batch's sweep expires it, so the cell re-executes.
        svc.run_batch(&jobs, build);
        let s = svc.stats();
        assert_eq!(s.store.hits, 0, "expired entries never replay");
        assert_eq!(s.store.misses, 2);
        assert_eq!(s.store.expired, 1);
    }

    #[test]
    fn invalidation_is_per_program() {
        let a = job(10, 1_000_000);
        let b = job(20, 1_000_000);
        let mut svc = CorpusService::new(1);
        svc.run_batch(&[a.clone(), b.clone()], build);
        assert_eq!(svc.stats().store_len, 2);
        let (results, blocks) = svc.invalidate_program(a.key().0);
        assert_eq!(results, 1, "exactly a's stored result dies");
        assert!(blocks > 0, "a's decoded blocks die with it");
        svc.run_batch(&[a, b], build);
        let s = svc.stats();
        assert_eq!(s.store.hits, 1, "b replays");
        assert_eq!(s.store.misses, 3, "a re-executes (2 cold + 1 after inval)");
    }
}
