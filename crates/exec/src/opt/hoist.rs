//! Loop-invariant bounds-check hoisting for self-loop superblocks.
//!
//! The superblock decoder follows back edges, so a hot loop whose body
//! fits in one block decodes as a block whose terminator targets its own
//! entry. Such a block re-enters at the top every iteration — a
//! [`Uop::Guard`](crate::uop::Uop::Guard) at index 0 therefore runs once
//! per iteration, *before* any member access, i.e. it dominates them all.
//!
//! An access is hoistable when its window is anchored on a register the
//! block never writes: the register's value and metadata at the guard are
//! then exactly the values every member access sees (value numbering pins
//! this — the access's `root`/`meta` equal the register's block-entry
//! numbers). Replacing `k ≥ 2` member checks with one guard saves `k - 1`
//! checks per iteration; `k = 1` would be a wash and is left for
//! coalescing.
//!
//! The guard may pass or fail; it never traps. On failure execution
//! diverts to the appended original block where every member check runs as
//! decoded, so a hoisted check can only trap where the original would
//! have.

use crate::ir::BlockIr;
use crate::uop::Uop;

use super::{Elision, GuardPlan};

/// Widest window one hoist guard may cover, in bytes. Generous — strided
/// walks over small arrays coalesce into one guard — but bounded so a
/// single odd access cannot force the whole group onto the fallback path.
const SPAN_CAP: i64 = 1024;

/// Plans one loop-top guard per eligible never-written anchor register.
pub(super) fn run(
    uops: &[Uop],
    entry: u32,
    ir: &BlockIr,
    elision: &mut [Option<Elision>],
) -> Vec<GuardPlan> {
    let self_loop = match *uops.last().expect("blocks are terminated") {
        Uop::Jump { target } => target == entry,
        Uop::BranchRR { target, .. } | Uop::BranchRI { target, .. } => target == entry,
        _ => false,
    };
    if !self_loop {
        return Vec::new();
    }
    let mut plans = Vec::new();
    // Skip the zero register (index 0): it is never "written" yet never
    // holds a pointer, so a guard anchored on it would always fail.
    for r in 1..ir.written.len() {
        if ir.written[r] {
            continue;
        }
        let (root, meta) = (ir.entry_val[r], ir.entry_meta[r]);
        let mut window: Option<(i64, i64)> = None;
        let mut members = Vec::new();
        for (i, a) in ir.accesses.iter().enumerate() {
            if elision[i].is_some() || a.root != root || a.meta != meta {
                continue;
            }
            let (lo, hi) = window.unwrap_or((a.lo, a.hi));
            let (lo, hi) = (lo.min(a.lo), hi.max(a.hi));
            if hi - lo > SPAN_CAP {
                continue;
            }
            window = Some((lo, hi));
            members.push(i);
        }
        let Some((lo, hi)) = window else { continue };
        if members.len() < 2 {
            continue;
        }
        // The anchor register holds exactly `root` (delta 0) at the block
        // top, so the window start *is* the guard offset.
        let (Ok(lo_off), Ok(span)) = (i32::try_from(lo), u32::try_from(hi - lo)) else {
            continue;
        };
        for &m in &members {
            elision[m] = Some(Elision::Hoist);
        }
        plans.push(GuardPlan {
            at: 0,
            addr: hardbound_isa::Reg::new(r as u8),
            lo_off,
            span,
        });
    }
    plans
}
