//! Lowering: rewrites the eliminated checks and planned guards back onto
//! the plain [`Uop`] stream.
//!
//! Two shapes come out:
//!
//! - **No guards** (pure RCE): every eliminated access is substituted
//!   in place with its `*Elided` twin. Same length, same indices,
//!   `fallback = 0` — the engine's ordinary fast path runs it.
//! - **With guards**: the optimized stream gets each guard inserted
//!   immediately before the µop it protects, and a verbatim copy of the
//!   original block is appended after it. `fallback` marks the seam. A
//!   guard that fails resumes at `fallback + at` — the original copy of
//!   the exact µop the guard preceded — so everything from that point
//!   (including every previously "eliminated" check) executes as decoded.
//!
//! Resume-index invariant: guards retire no µop, every other µop retires
//! exactly one, so when a guard inserted before original index `at` runs,
//! exactly `at` µops have retired — precisely the state the interpreter
//! would be in at original µop `at`. Diverting to `fallback + at` is
//! therefore transparent.

use crate::uop::{DecodedBlock, Uop};

use super::{Elision, GuardPlan};
use crate::ir::BlockIr;

/// Applies `elision` and `guards` to `block`, producing the new block.
pub(super) fn lower(
    block: &DecodedBlock,
    ir: &BlockIr,
    elision: &[Option<Elision>],
    mut guards: Vec<GuardPlan>,
) -> DecodedBlock {
    let n = block.uops.len();
    let mut subst: Vec<Option<Uop>> = vec![None; n];
    for (a, e) in ir.accesses.iter().zip(elision) {
        if e.is_none() {
            continue;
        }
        subst[a.idx] = Some(match block.uops[a.idx] {
            Uop::LoadHb {
                width,
                rd,
                addr,
                offset,
                pc,
            } => Uop::LoadHbElided {
                width,
                rd,
                addr,
                offset,
                pc,
            },
            Uop::StoreHb {
                width,
                src,
                addr,
                offset,
                pc,
            } => Uop::StoreHbElided {
                width,
                src,
                addr,
                offset,
                pc,
            },
            u => unreachable!("eliminated non-access µop {u:?}"),
        });
    }
    let elided_total = subst.iter().filter(|s| s.is_some()).count() as u32;
    if guards.is_empty() {
        let uops: Vec<Uop> = block
            .uops
            .iter()
            .enumerate()
            .map(|(i, &u)| subst[i].unwrap_or(u))
            .collect();
        return DecodedBlock {
            uops: uops.into_boxed_slice(),
            spans: block.spans.clone(),
            fallback: 0,
            elided_counts: Box::new([elided_total]),
        };
    }
    guards.sort_by_key(|g| g.at);
    let fallback = (n + guards.len()) as u32;
    let mut uops = Vec::with_capacity(2 * n + guards.len());
    // Elided accesses per guard-free segment, in dispatch order: a guard
    // closes the running segment, the terminator closes the last one.
    let mut counts = Vec::with_capacity(guards.len() + 1);
    let mut seg_count = 0u32;
    let mut gi = 0;
    for i in 0..n {
        while gi < guards.len() && guards[gi].at == i {
            let g = &guards[gi];
            // Guard j lands at lowered index `at + j`; `next` points at
            // guard j+1's lowered slot, or the optimized-stream terminator.
            let next = guards
                .get(gi + 1)
                .map_or(fallback - 1, |ng| (ng.at + gi + 1) as u32);
            uops.push(Uop::Guard {
                addr: g.addr,
                lo_off: g.lo_off,
                span: g.span,
                resume: fallback + i as u32,
                next,
            });
            counts.push(seg_count);
            seg_count = 0;
            gi += 1;
        }
        seg_count += u32::from(subst[i].is_some());
        uops.push(subst[i].unwrap_or(block.uops[i]));
    }
    counts.push(seg_count);
    debug_assert_eq!(gi, guards.len(), "guard planned past the terminator");
    debug_assert_eq!(counts.iter().sum::<u32>(), elided_total);
    uops.extend_from_slice(&block.uops);
    DecodedBlock {
        uops: uops.into_boxed_slice(),
        spans: block.spans.clone(),
        fallback,
        elided_counts: counts.into_boxed_slice(),
    }
}
