//! Check coalescing for adjacent-field accesses off one base.
//!
//! Struct-style code checks `p+0`, `p+4`, `p+8`, … individually. When
//! `k ≥ 2` not-yet-eliminated accesses share metadata and root value
//! numbers and their windows fit inside a small byte window, one widened
//! [`Uop::Guard`](crate::uop::Uop::Guard) placed immediately before the
//! first member replaces all `k` compares. The guard dominates every
//! member (straight-line block, members are later in program order), and a
//! passed guard proves the whole window is in bounds and inside one
//! region, so every member window inherits both.
//!
//! The guard is anchored on the first member's own address register at the
//! first member's own index — zero staleness gap: the register's value
//! number there is exactly the one the lift recorded, so the guard's
//! window arithmetic (`lo_off = window_lo - addr_delta`) is exact.

use crate::ir::BlockIr;

use super::{Elision, GuardPlan};

/// Widest coalesced window, in bytes. Sized for adjacent-field access
/// runs; anything larger risks widening past a small object's bound and
/// sending every iteration down the fallback path.
const SPAN_CAP: i64 = 64;

/// Plans one guard per coalescable group, marking members
/// [`Elision::Coalesce`].
pub(super) fn run(ir: &BlockIr, elision: &mut [Option<Elision>]) -> Vec<GuardPlan> {
    let n = ir.accesses.len();
    let mut plans = Vec::new();
    let mut claimed = vec![false; n];
    for i in 0..n {
        if elision[i].is_some() || claimed[i] {
            continue;
        }
        let a = ir.accesses[i];
        let (mut lo, mut hi) = (a.lo, a.hi);
        let mut members = vec![i];
        for (j, b) in ir.accesses.iter().enumerate().skip(i + 1) {
            if elision[j].is_some() || claimed[j] || b.meta != a.meta || b.root != a.root {
                continue;
            }
            let (nlo, nhi) = (lo.min(b.lo), hi.max(b.hi));
            if nhi - nlo > SPAN_CAP {
                continue;
            }
            (lo, hi) = (nlo, nhi);
            members.push(j);
            claimed[j] = true;
        }
        if members.len() < 2 {
            continue;
        }
        // The guard reads the anchor's address register right before µop
        // `a.idx`, where it holds `root + a.addr_delta`.
        let (Ok(lo_off), Ok(span)) = (i32::try_from(lo - a.addr_delta), u32::try_from(hi - lo))
        else {
            for &m in &members[1..] {
                claimed[m] = false;
            }
            continue;
        };
        for &m in &members {
            elision[m] = Some(Elision::Coalesce);
        }
        plans.push(GuardPlan {
            at: a.idx,
            addr: a.addr,
            lo_off,
            span,
        });
    }
    plans
}
