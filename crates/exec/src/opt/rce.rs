//! Redundant-check elimination: forward availability over the
//! straight-line block.
//!
//! Every executed HardBound check proves a **fact**: the window
//! `[root+lo, root+hi)` is inside the pointer's `[base, bound)` *and*
//! inside one contiguous memory region (the region probe checks
//! containment in a single region, so every sub-window inherits both
//! properties). A later access whose window is a subset of one such fact,
//! under the same metadata and root value numbers, cannot trap — its
//! compare and probe are deleted.
//!
//! Facts are kept as separate intervals on purpose. Merging two facts into
//! their hull would be unsound for the region probe: the windows may lie
//! in different regions with an unmapped gap between them (reachable —
//! `Meta::UNCHECKED` spans the whole address space, so fuzz programs can
//! pass the bounds compare anywhere).

use crate::ir::{BlockIr, Vn};

use super::Elision;

/// One proved window: `(meta, root, lo, hi)`.
struct Fact {
    meta: Vn,
    root: Vn,
    lo: i64,
    hi: i64,
}

/// Marks every access covered by an earlier fact as [`Elision::Rce`].
pub(super) fn run(ir: &BlockIr, elision: &mut [Option<Elision>]) {
    let mut facts: Vec<Fact> = Vec::new();
    for (i, a) in ir.accesses.iter().enumerate() {
        let covered = facts
            .iter()
            .any(|f| f.meta == a.meta && f.root == a.root && f.lo <= a.lo && a.hi <= f.hi);
        if covered {
            elision[i] = Some(Elision::Rce);
        } else {
            facts.push(Fact {
                meta: a.meta,
                root: a.root,
                lo: a.lo,
                hi: a.hi,
            });
        }
    }
}
