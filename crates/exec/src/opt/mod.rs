//! Static bounds-check elimination over decoded superblocks.
//!
//! The pipeline lifts a freshly decoded block into the value-numbered IR
//! (`crate::ir`), runs three passes, and lowers the result back onto the
//! existing [`Uop`] vocabulary so the engine needs no new dispatch:
//!
//! 1. **Redundant-check elimination** ([`rce`]): a HardBound access whose
//!    window `[root+lo, root+hi)` is a subset of a window already checked
//!    earlier in the block under the *same* metadata and root value
//!    numbers is provably in bounds — the earlier check dominates it
//!    (superblocks are straight-line) and proved a superset. Its compare
//!    and region probe are deleted; the access itself and every statistic
//!    the interpreter would have counted are kept
//!    ([`Uop::LoadHbElided`]/[`Uop::StoreHbElided`]).
//! 2. **Loop-invariant hoisting** ([`hoist`]): in a self-loop block (the
//!    back edge the superblock decoder followed targets the block's own
//!    entry), accesses whose windows are anchored on a register the block
//!    never writes re-check the same window every iteration. One
//!    [`Uop::Guard`] at the block top covers all of them.
//! 3. **Check coalescing** ([`coalesce`]): adjacent-field accesses off one
//!    base within a small byte window are covered by a single widened
//!    [`Uop::Guard`] placed at the first member.
//!
//! A guard never traps. If the widened check fails — which can happen even
//! when every member access is individually fine — execution diverts to a
//! verbatim copy of the original, unoptimized block appended after the
//! optimized stream ([`DecodedBlock::fallback`]), where every check runs
//! exactly as decoded. Eliminated therefore means *proved*: the optimized
//! block traps exactly where and exactly as the original would, with
//! identical [`ExecStats`](hardbound_core::ExecStats).
//!
//! Facts are deliberately **not** merged across checks: two passed checks
//! prove two windows, but their hull may straddle a gap between memory
//! regions (the region probe checks containment in a *single* contiguous
//! region), so only subset-of-one-fact elision is sound.

mod coalesce;
mod hoist;
mod lower;
mod rce;

use hardbound_isa::Reg;

use crate::ir;
use crate::uop::DecodedBlock;

/// Optimizer configuration. Deliberately *not* part of
/// [`MachineConfig`](hardbound_core::MachineConfig): the optimizer changes
/// decoded bytes, not architectural semantics, so it keys the block-cache
/// [`ProgramId`](crate::ProgramId) (via
/// [`ProgramId::of_opt`](crate::ProgramId::of_opt)) instead of the machine
/// fingerprint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptConfig {
    /// Run the optimization pipeline at decode time (`HB_OPT`).
    pub enabled: bool,
    /// Audit mode (`HB_OPT_AUDIT`): execute every eliminated check
    /// shadow-side anyway and panic on any would-have-trapped divergence.
    /// Implies `enabled`.
    pub audit: bool,
}

impl OptConfig {
    /// Optimizer off — the default everywhere an override isn't given.
    pub const OFF: OptConfig = OptConfig {
        enabled: false,
        audit: false,
    };

    /// Optimizer on, no auditing.
    pub const ON: OptConfig = OptConfig {
        enabled: true,
        audit: false,
    };

    /// Optimizer on with shadow-side auditing.
    pub const AUDIT: OptConfig = OptConfig {
        enabled: true,
        audit: true,
    };

    /// Resolves the configuration from `HB_OPT` / `HB_OPT_AUDIT`. Unset,
    /// empty, `0`, and `false` (any case) mean off; anything else is on.
    /// `HB_OPT_AUDIT=1` alone enables the optimizer too — auditing nothing
    /// would pin nothing.
    #[must_use]
    pub fn from_env() -> OptConfig {
        fn flag(name: &str) -> bool {
            std::env::var(name).is_ok_and(|v| {
                let v = v.trim();
                !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false")
            })
        }
        let audit = flag("HB_OPT_AUDIT");
        OptConfig {
            enabled: audit || flag("HB_OPT"),
            audit,
        }
    }
}

/// What one run of [`optimize`] did to a block, in checks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// HardBound checks present in the unoptimized stream.
    pub emitted: u64,
    /// Checks deleted by redundant-check elimination.
    pub elided: u64,
    /// Checks replaced by a hoisted loop-top guard.
    pub hoisted: u64,
    /// Checks replaced by a coalesced adjacent-field guard.
    pub coalesced: u64,
    /// Widened guards inserted (hoisting + coalescing).
    pub guards: u64,
}

/// How one access's check was eliminated (counter attribution).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Elision {
    /// Subset of a dominating check's window.
    Rce,
    /// Covered by a loop-top hoist guard.
    Hoist,
    /// Covered by an adjacent-field coalescing guard.
    Coalesce,
}

/// A widened range check to insert: `Guard` reads `addr` immediately
/// before original µop index `at` and passes iff
/// `[r(addr)+lo_off, r(addr)+lo_off+span)` is in bounds and in one region.
struct GuardPlan {
    /// Original µop index the guard precedes (insertion point).
    at: usize,
    /// Architectural register the guard reads (value and metadata).
    addr: Reg,
    /// Window start relative to `r(addr)` at the insertion point.
    lo_off: i32,
    /// Window length in bytes.
    span: u32,
}

/// Runs the full pipeline on a freshly decoded block. `entry` is the
/// block's entry instruction index (self-loop detection). Returns the
/// rewritten block — `None` when no check could be eliminated — plus the
/// counters for telemetry; `emitted` is filled in either way.
#[must_use]
pub fn optimize(block: &DecodedBlock, entry: u32) -> (Option<DecodedBlock>, OptStats) {
    let ir = ir::lift(&block.uops);
    let mut stats = OptStats {
        emitted: ir.accesses.len() as u64,
        ..OptStats::default()
    };
    if ir.accesses.is_empty() {
        return (None, stats);
    }
    let mut elision: Vec<Option<Elision>> = vec![None; ir.accesses.len()];
    rce::run(&ir, &mut elision);
    let mut guards = hoist::run(&block.uops, entry, &ir, &mut elision);
    guards.extend(coalesce::run(&ir, &mut elision));
    if elision.iter().all(Option::is_none) {
        return (None, stats);
    }
    for e in elision.iter().flatten() {
        match e {
            Elision::Rce => stats.elided += 1,
            Elision::Hoist => stats.hoisted += 1,
            Elision::Coalesce => stats.coalesced += 1,
        }
    }
    stats.guards = guards.len() as u64;
    (Some(lower::lower(block, &ir, &elision, guards)), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::uop::{decode_block, Uop};
    use hardbound_core::MachineConfig;
    use hardbound_isa::{layout, CmpOp, FuncId, FunctionBuilder, Program, Reg, Width};

    fn optimized(program: &Program, entry: u32) -> (Option<DecodedBlock>, OptStats, usize) {
        let cfg = MachineConfig::default();
        let block = decode_block(program, FuncId(0), entry, &cfg);
        let n = block.uops.len();
        let (opt, stats) = optimize(&block, entry);
        (opt, stats, n)
    }

    #[test]
    fn repeated_load_is_elided_in_place() {
        let mut f = FunctionBuilder::new("rce", 0);
        f.li(Reg::A0, layout::HEAP_BASE);
        f.setbound_imm(Reg::A1, Reg::A0, 8);
        f.load(Width::Word, Reg::A2, Reg::A1, 0);
        f.load(Width::Word, Reg::A3, Reg::A1, 0);
        f.halt();
        let program = Program::with_entry(vec![f.finish()]);
        let (opt, stats, n) = optimized(&program, 0);
        let b = opt.expect("the second identical check must go");
        assert_eq!(b.fallback, 0, "pure RCE needs no guard or fallback");
        assert_eq!(b.uops.len(), n, "in-place substitution keeps the shape");
        assert_eq!((stats.emitted, stats.elided), (2, 1));
        assert_eq!((stats.hoisted, stats.coalesced, stats.guards), (0, 0, 0));
        let elided = b
            .uops
            .iter()
            .filter(|u| matches!(u, Uop::LoadHbElided { .. }))
            .count();
        assert_eq!(elided, 1);
    }

    #[test]
    fn narrower_subset_window_is_elided_too() {
        let mut f = FunctionBuilder::new("sub", 0);
        f.li(Reg::A0, layout::HEAP_BASE);
        f.setbound_imm(Reg::A1, Reg::A0, 8);
        f.load(Width::Word, Reg::A2, Reg::A1, 0);
        f.load(Width::Byte, Reg::A3, Reg::A1, 2); // inside the checked word
        f.halt();
        let program = Program::with_entry(vec![f.finish()]);
        let (opt, stats, _) = optimized(&program, 0);
        assert!(opt.is_some());
        assert_eq!(stats.elided, 1);
    }

    #[test]
    fn disjoint_windows_do_not_merge() {
        // [0,4) and [8,12) must NOT prove [4,8): fact hulls are unsound
        // across region gaps, so the middle access keeps its check and the
        // pair coalesces under a guard instead.
        let mut f = FunctionBuilder::new("gap", 0);
        f.li(Reg::A0, layout::HEAP_BASE);
        f.setbound_imm(Reg::A1, Reg::A0, 16);
        f.load(Width::Word, Reg::A2, Reg::A1, 0);
        f.load(Width::Word, Reg::A3, Reg::A1, 8);
        f.halt();
        let program = Program::with_entry(vec![f.finish()]);
        let (_, stats, _) = optimized(&program, 0);
        assert_eq!(stats.elided, 0, "no subset relation, no RCE");
    }

    #[test]
    fn adjacent_fields_coalesce_under_one_guard() {
        let mut f = FunctionBuilder::new("co", 0);
        f.li(Reg::A0, layout::HEAP_BASE);
        f.setbound_imm(Reg::A1, Reg::A0, 16);
        f.load(Width::Word, Reg::A2, Reg::A1, 0);
        f.load(Width::Word, Reg::A3, Reg::A1, 4);
        f.load(Width::Word, Reg::A4, Reg::A1, 8);
        f.halt();
        let program = Program::with_entry(vec![f.finish()]);
        let (opt, stats, n) = optimized(&program, 0);
        let b = opt.expect("three adjacent checks must coalesce");
        assert_eq!((stats.coalesced, stats.guards), (3, 1));
        assert_eq!(b.fallback as usize, n + 1, "optimized stream + 1 guard");
        assert_eq!(b.uops.len(), 2 * n + 1, "original copy appended");
        let g = b
            .uops
            .iter()
            .position(|u| matches!(u, Uop::Guard { .. }))
            .expect("guard present");
        assert!(
            matches!(b.uops[g + 1], Uop::LoadHbElided { .. }),
            "guard sits immediately before its first member"
        );
        let Uop::Guard { span, resume, .. } = b.uops[g] else {
            unreachable!()
        };
        assert_eq!(span, 12, "widened window covers [p+0, p+12)");
        assert_eq!(
            resume,
            b.fallback + g as u32,
            "failure resumes at the original copy of the guarded µop"
        );
        assert_eq!(
            b.uops[b.fallback as usize..].len(),
            n,
            "fallback stream is the verbatim original"
        );
    }

    #[test]
    fn self_loop_checks_hoist_to_one_loop_top_guard() {
        let mut f = FunctionBuilder::new("hoist", 0);
        f.li(Reg::A0, 0);
        f.li(Reg::T0, layout::HEAP_BASE);
        f.setbound_imm(Reg::A1, Reg::T0, 64);
        let head = f.bind_label();
        f.load(Width::Word, Reg::A2, Reg::A1, 0);
        f.load(Width::Word, Reg::A3, Reg::A1, 4);
        f.addi(Reg::A0, Reg::A0, 1);
        f.branch(CmpOp::Lt, Reg::A0, 8, head);
        f.li(Reg::A0, 0);
        f.halt();
        let program = Program::with_entry(vec![f.finish()]);
        let entry = 3; // the loop head: li, li, setbound precede it
        let (opt, stats, _) = optimized(&program, entry);
        let b = opt.expect("loop-invariant checks must hoist");
        assert_eq!((stats.hoisted, stats.guards), (2, 1));
        assert_eq!(stats.coalesced, 0, "hoisting claimed the group first");
        assert!(
            matches!(b.uops[0], Uop::Guard { .. }),
            "hoisted guard runs at the loop top"
        );
        assert!(b.fallback > 0);
    }

    #[test]
    fn checkless_blocks_are_left_alone() {
        let mut f = FunctionBuilder::new("plain", 0);
        f.li(Reg::A0, 1);
        f.addi(Reg::A0, Reg::A0, 2);
        f.halt();
        let program = Program::with_entry(vec![f.finish()]);
        let (opt, stats, _) = optimized(&program, 0);
        assert!(opt.is_none());
        assert_eq!(stats, OptStats::default());
    }

    #[test]
    fn clobbered_base_blocks_elision() {
        let mut f = FunctionBuilder::new("clob", 0);
        f.li(Reg::A0, layout::HEAP_BASE);
        f.setbound_imm(Reg::A1, Reg::A0, 8);
        f.load(Width::Word, Reg::A2, Reg::A1, 0);
        f.setbound_imm(Reg::A1, Reg::A0, 8); // rewrites A1: new value number
        f.load(Width::Word, Reg::A3, Reg::A1, 0);
        f.halt();
        let program = Program::with_entry(vec![f.finish()]);
        let (_, stats, _) = optimized(&program, 0);
        assert_eq!(
            stats.elided, 0,
            "a rewritten base register invalidates the fact"
        );
    }
}
