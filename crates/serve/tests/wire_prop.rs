//! Property suite for the wire codec: `decode ∘ encode ≡ id` over
//! generated [`RunOutcome`]s, [`MachineConfig`]s and store-record keys —
//! the invariant that makes disk replay and socket replay byte-identical
//! to in-process execution.

use hardbound_core::{
    ExecStats, HardboundConfig, MachineConfig, MetaPath, Pc, PointerEncoding, RunOutcome,
    SafetyMode, Trap,
};
use hardbound_isa::FuncId;
use hardbound_serve::wire::{
    decode_config, decode_outcome, encode_config, encode_outcome, Reader, Writer,
};
use proptest::prelude::*;

fn pc() -> impl Strategy<Value = Pc> {
    (any::<u32>(), any::<u32>()).prop_map(|(f, i)| Pc {
        func: FuncId(f),
        index: i,
    })
}

fn trap() -> impl Strategy<Value = Trap> {
    prop_oneof![
        (
            pc(),
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            any::<bool>()
        )
            .prop_map(|(pc, addr, base, bound, is_store)| Trap::BoundsViolation {
                pc,
                addr,
                base,
                bound,
                is_store,
            }),
        (pc(), any::<u32>(), any::<bool>()).prop_map(|(pc, addr, is_store)| {
            Trap::NonPointerDereference { pc, addr, is_store }
        }),
        (pc(), any::<u32>()).prop_map(|(pc, value)| Trap::InvalidCallTarget { pc, value }),
        (pc(), any::<u32>(), any::<bool>()).prop_map(|(pc, addr, is_store)| Trap::WildAddress {
            pc,
            addr,
            is_store
        }),
        any::<i32>().prop_map(|code| Trap::SoftwareAbort { code }),
        (pc(), any::<u32>()).prop_map(|(pc, addr)| Trap::ObjectTableViolation { pc, addr }),
        pc().prop_map(|pc| Trap::DivideByZero { pc }),
        Just(Trap::CallDepthExceeded),
        Just(Trap::StackOverflow),
        Just(Trap::OutOfFuel),
    ]
}

fn stats() -> impl Strategy<Value = ExecStats> {
    (
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
        ),
        (0usize..1 << 20, 0usize..1 << 20, 0usize..1 << 20),
    )
        .prop_map(|(a, b, c, pages)| {
            let mut s = ExecStats {
                uops: a.0,
                setbound_uops: a.1,
                meta_uops: a.2,
                check_uops: a.3,
                bounds_checks: a.4,
                loads: a.5,
                stores: b.0,
                ptr_stores: b.1,
                compressed_ptr_stores: b.2,
                ptr_loads: b.3,
                compressed_ptr_loads: b.4,
                objtable_cycles: b.5,
                ..ExecStats::default()
            };
            s.hierarchy.data_accesses = c.0;
            s.hierarchy.data_stall_cycles = c.1;
            s.hierarchy.tag_accesses = c.2;
            s.hierarchy.tag_stall_cycles = c.3;
            s.hierarchy.shadow_accesses = c.4;
            s.hierarchy.shadow_stall_cycles = c.5;
            s.data_pages = pages.0;
            s.tag_pages = pages.1;
            s.shadow_pages = pages.2;
            s
        })
}

fn outcome() -> impl Strategy<Value = RunOutcome> {
    (
        prop_oneof![Just(None), any::<i32>().prop_map(Some)],
        prop_oneof![Just(None), trap().prop_map(Some)],
        stats(),
        prop::collection::vec(0u8..128, 0..64),
        prop::collection::vec(any::<i32>(), 0..32),
    )
        .prop_map(|(exit_code, trap, stats, output, ints)| RunOutcome {
            exit_code,
            trap,
            stats,
            // Arbitrary ASCII keeps the string valid UTF-8; multi-byte
            // coverage comes from the fixed case in the unit tests.
            output: output.into_iter().map(char::from).collect(),
            ints,
        })
}

fn config() -> impl Strategy<Value = MachineConfig> {
    (
        prop_oneof![
            Just(None),
            (0u8..3, any::<bool>(), any::<bool>()).prop_map(|(enc, malloc_only, check)| {
                let encoding = [
                    PointerEncoding::Extern4,
                    PointerEncoding::Intern4,
                    PointerEncoding::Intern11,
                ][enc as usize];
                let mode = if malloc_only {
                    SafetyMode::MallocOnly
                } else {
                    SafetyMode::Full
                };
                Some(HardboundConfig {
                    encoding,
                    mode,
                    check_uop: check,
                })
            }),
        ],
        any::<u64>(),
        1usize..1 << 24,
        prop_oneof![
            Just(MetaPath::Summary),
            Just(MetaPath::Walk),
            Just(MetaPath::Charge)
        ],
        (1u64..1 << 24, 1usize..64, 0u64..1 << 10),
    )
        .prop_map(|(hardbound, fuel, depth, meta, (bytes, ways, penalty))| {
            let mut cfg = MachineConfig::baseline();
            cfg.hardbound = hardbound;
            cfg.fuel = fuel;
            cfg.max_call_depth = depth;
            cfg.meta_path = meta;
            cfg.hierarchy.tag_cache_bytes = bytes;
            cfg.hierarchy.l1_ways = ways;
            cfg.hierarchy.l2_miss_penalty = penalty;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn outcome_encode_decode_is_identity(out in outcome()) {
        let mut w = Writer::new();
        encode_outcome(&mut w, &out);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = decode_outcome(&mut r).expect("encoded outcomes decode");
        prop_assert_eq!(back, out, "decode ∘ encode must be the identity");
        prop_assert!(r.is_exhausted(), "no trailing bytes");
    }

    #[test]
    fn config_encode_decode_is_identity(cfg in config()) {
        let mut w = Writer::new();
        encode_config(&mut w, &cfg);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = decode_config(&mut r).expect("encoded configs decode");
        prop_assert_eq!(back, cfg, "decode ∘ encode must be the identity");
        prop_assert!(r.is_exhausted());
    }

    /// Fingerprint keys (two u64s) survive the record framing: encode a
    /// key alongside an outcome, decode, compare — and the config's
    /// stable fingerprint is unchanged by a wire round trip, so remote
    /// and local store keys agree.
    #[test]
    fn fingerprints_survive_the_wire(cfg in config(), salt in any::<u64>()) {
        let fp = hardbound_exec::config_fingerprint(&cfg, salt);
        let mut w = Writer::new();
        encode_config(&mut w, &cfg);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = decode_config(&mut r).expect("decodes");
        prop_assert_eq!(
            hardbound_exec::config_fingerprint(&back, salt),
            fp,
            "a config's fingerprint must be invariant under the codec"
        );
    }

    /// Corrupting any single byte of an encoded outcome never panics the
    /// decoder: it either fails cleanly or yields some decoded value —
    /// the record checksum upstream is what detects the flip.
    #[test]
    fn single_byte_corruption_never_panics(out in outcome(), flip in any::<u64>()) {
        let mut w = Writer::new();
        encode_outcome(&mut w, &out);
        let mut bytes = w.into_bytes();
        let i = (flip % bytes.len() as u64) as usize;
        bytes[i] ^= 1 + (flip >> 32) as u8 % 255;
        let mut r = Reader::new(&bytes);
        let _ = decode_outcome(&mut r); // must not panic
    }
}
