//! The pinned binary wire format.
//!
//! Std-only (no serde in the build container), versioned, and **explicit**:
//! every field is written in a documented order as little-endian bytes,
//! every enum as a one-byte tag, every variable-length field with a length
//! prefix. The same encoding backs the persistent store records and the
//! `hbserve` socket protocol, so a byte stream produced by any process of
//! any toolchain decodes identically everywhere. Any change to the layout
//! below must bump [`WIRE_VERSION`]; readers reject (or cold-start on)
//! other versions rather than guess.
//!
//! Decoding is **total**: malformed input yields a [`WireError`], never a
//! panic — the persistent-store loader leans on that to truncate a
//! corrupted log at the first bad record.

use std::fmt;

use hardbound_core::{
    ExecStats, HardboundConfig, HierarchyConfig, MachineConfig, MetaPath, Pc, PointerEncoding,
    RunOutcome, SafetyMode, Trap,
};
use hardbound_isa::FuncId;
use hardbound_telemetry::{Field, SpanEvent, SpanId, TraceId};

/// Version tag of the wire layout. Bump on **any** change to an encode
/// function in this module.
pub const WIRE_VERSION: u32 = 1;

/// Why a byte stream failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the field being read.
    Truncated,
    /// An enum tag byte held no known variant.
    BadTag {
        /// Which field was being decoded.
        what: &'static str,
        /// The offending tag value.
        tag: u8,
    },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A length prefix exceeded the remaining input (or a sanity bound).
    BadLength,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "input truncated mid-field"),
            WireError::BadTag { what, tag } => write!(f, "invalid {what} tag {tag:#04x}"),
            WireError::BadUtf8 => write!(f, "string field is not UTF-8"),
            WireError::BadLength => write!(f, "length prefix exceeds the input"),
        }
    }
}

impl std::error::Error for WireError {}

/// An append-only byte sink with the primitive encoders.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    #[must_use]
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32` as 4 little-endian bytes.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` as 8 little-endian bytes.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i32` as its two's-complement little-endian bytes.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// A cursor over encoded bytes with the primitive decoders.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader over `buf` starting at its first byte.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8B")))
    }

    /// Reads a little-endian `i32`.
    pub fn get_i32(&mut self) -> Result<i32, WireError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4B")))
    }

    /// Reads a `u64` that must fit a `usize` length.
    pub fn get_len(&mut self) -> Result<usize, WireError> {
        let v = self.get_u64()?;
        let v = usize::try_from(v).map_err(|_| WireError::BadLength)?;
        if v > self.remaining() {
            return Err(WireError::BadLength);
        }
        Ok(v)
    }

    /// Reads a length-prefixed byte string.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.get_len()?;
        self.take(n)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<&'a str, WireError> {
        std::str::from_utf8(self.get_bytes()?).map_err(|_| WireError::BadUtf8)
    }
}

fn put_bool(w: &mut Writer, v: bool) {
    w.put_u8(u8::from(v));
}

fn get_bool(r: &mut Reader<'_>) -> Result<bool, WireError> {
    match r.get_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        tag => Err(WireError::BadTag { what: "bool", tag }),
    }
}

fn put_pc(w: &mut Writer, pc: Pc) {
    w.put_u32(pc.func.0);
    w.put_u32(pc.index);
}

fn get_pc(r: &mut Reader<'_>) -> Result<Pc, WireError> {
    Ok(Pc {
        func: FuncId(r.get_u32()?),
        index: r.get_u32()?,
    })
}

/// Encodes an optional trap (tag `0` = none, else variant tag + fields).
pub fn encode_trap(w: &mut Writer, trap: &Option<Trap>) {
    match trap {
        None => w.put_u8(0),
        Some(Trap::BoundsViolation {
            pc,
            addr,
            base,
            bound,
            is_store,
        }) => {
            w.put_u8(1);
            put_pc(w, *pc);
            w.put_u32(*addr);
            w.put_u32(*base);
            w.put_u32(*bound);
            put_bool(w, *is_store);
        }
        Some(Trap::NonPointerDereference { pc, addr, is_store }) => {
            w.put_u8(2);
            put_pc(w, *pc);
            w.put_u32(*addr);
            put_bool(w, *is_store);
        }
        Some(Trap::InvalidCallTarget { pc, value }) => {
            w.put_u8(3);
            put_pc(w, *pc);
            w.put_u32(*value);
        }
        Some(Trap::WildAddress { pc, addr, is_store }) => {
            w.put_u8(4);
            put_pc(w, *pc);
            w.put_u32(*addr);
            put_bool(w, *is_store);
        }
        Some(Trap::SoftwareAbort { code }) => {
            w.put_u8(5);
            w.put_i32(*code);
        }
        Some(Trap::ObjectTableViolation { pc, addr }) => {
            w.put_u8(6);
            put_pc(w, *pc);
            w.put_u32(*addr);
        }
        Some(Trap::DivideByZero { pc }) => {
            w.put_u8(7);
            put_pc(w, *pc);
        }
        Some(Trap::CallDepthExceeded) => w.put_u8(8),
        Some(Trap::StackOverflow) => w.put_u8(9),
        Some(Trap::OutOfFuel) => w.put_u8(10),
    }
}

/// Decodes an optional trap (inverse of [`encode_trap`]).
///
/// # Errors
///
/// [`WireError`] on truncation or an unknown variant tag.
pub fn decode_trap(r: &mut Reader<'_>) -> Result<Option<Trap>, WireError> {
    Ok(match r.get_u8()? {
        0 => None,
        1 => Some(Trap::BoundsViolation {
            pc: get_pc(r)?,
            addr: r.get_u32()?,
            base: r.get_u32()?,
            bound: r.get_u32()?,
            is_store: get_bool(r)?,
        }),
        2 => Some(Trap::NonPointerDereference {
            pc: get_pc(r)?,
            addr: r.get_u32()?,
            is_store: get_bool(r)?,
        }),
        3 => Some(Trap::InvalidCallTarget {
            pc: get_pc(r)?,
            value: r.get_u32()?,
        }),
        4 => Some(Trap::WildAddress {
            pc: get_pc(r)?,
            addr: r.get_u32()?,
            is_store: get_bool(r)?,
        }),
        5 => Some(Trap::SoftwareAbort { code: r.get_i32()? }),
        6 => Some(Trap::ObjectTableViolation {
            pc: get_pc(r)?,
            addr: r.get_u32()?,
        }),
        7 => Some(Trap::DivideByZero { pc: get_pc(r)? }),
        8 => Some(Trap::CallDepthExceeded),
        9 => Some(Trap::StackOverflow),
        10 => Some(Trap::OutOfFuel),
        tag => return Err(WireError::BadTag { what: "trap", tag }),
    })
}

/// Encodes the complete [`ExecStats`] (every counter, hierarchy stalls
/// included) — field order is the struct's declaration order and part of
/// the wire contract.
pub fn encode_stats(w: &mut Writer, s: &ExecStats) {
    w.put_u64(s.uops);
    w.put_u64(s.setbound_uops);
    w.put_u64(s.meta_uops);
    w.put_u64(s.check_uops);
    w.put_u64(s.bounds_checks);
    w.put_u64(s.loads);
    w.put_u64(s.stores);
    w.put_u64(s.ptr_stores);
    w.put_u64(s.compressed_ptr_stores);
    w.put_u64(s.ptr_loads);
    w.put_u64(s.compressed_ptr_loads);
    w.put_u64(s.objtable_cycles);
    w.put_u64(s.hierarchy.data_accesses);
    w.put_u64(s.hierarchy.data_stall_cycles);
    w.put_u64(s.hierarchy.tag_accesses);
    w.put_u64(s.hierarchy.tag_stall_cycles);
    w.put_u64(s.hierarchy.shadow_accesses);
    w.put_u64(s.hierarchy.shadow_stall_cycles);
    w.put_u64(s.data_pages as u64);
    w.put_u64(s.tag_pages as u64);
    w.put_u64(s.shadow_pages as u64);
}

/// Decodes [`ExecStats`] (inverse of [`encode_stats`]).
///
/// # Errors
///
/// [`WireError::Truncated`] when the input ends early.
pub fn decode_stats(r: &mut Reader<'_>) -> Result<ExecStats, WireError> {
    let mut s = ExecStats {
        uops: r.get_u64()?,
        setbound_uops: r.get_u64()?,
        meta_uops: r.get_u64()?,
        check_uops: r.get_u64()?,
        bounds_checks: r.get_u64()?,
        loads: r.get_u64()?,
        stores: r.get_u64()?,
        ptr_stores: r.get_u64()?,
        compressed_ptr_stores: r.get_u64()?,
        ptr_loads: r.get_u64()?,
        compressed_ptr_loads: r.get_u64()?,
        objtable_cycles: r.get_u64()?,
        ..ExecStats::default()
    };
    s.hierarchy.data_accesses = r.get_u64()?;
    s.hierarchy.data_stall_cycles = r.get_u64()?;
    s.hierarchy.tag_accesses = r.get_u64()?;
    s.hierarchy.tag_stall_cycles = r.get_u64()?;
    s.hierarchy.shadow_accesses = r.get_u64()?;
    s.hierarchy.shadow_stall_cycles = r.get_u64()?;
    s.data_pages = usize::try_from(r.get_u64()?).map_err(|_| WireError::BadLength)?;
    s.tag_pages = usize::try_from(r.get_u64()?).map_err(|_| WireError::BadLength)?;
    s.shadow_pages = usize::try_from(r.get_u64()?).map_err(|_| WireError::BadLength)?;
    Ok(s)
}

/// Encodes a complete [`RunOutcome`]: exit code, trap, full statistics,
/// console output and the `print_int` stream — everything `PartialEq`
/// compares, so decode∘encode preserves observational identity exactly.
pub fn encode_outcome(w: &mut Writer, out: &RunOutcome) {
    match out.exit_code {
        None => w.put_u8(0),
        Some(code) => {
            w.put_u8(1);
            w.put_i32(code);
        }
    }
    encode_trap(w, &out.trap);
    encode_stats(w, &out.stats);
    w.put_str(&out.output);
    w.put_u64(out.ints.len() as u64);
    for &v in &out.ints {
        w.put_i32(v);
    }
}

/// Decodes a [`RunOutcome`] (inverse of [`encode_outcome`]).
///
/// # Errors
///
/// [`WireError`] on truncation, bad tags, or invalid UTF-8.
pub fn decode_outcome(r: &mut Reader<'_>) -> Result<RunOutcome, WireError> {
    let exit_code = match r.get_u8()? {
        0 => None,
        1 => Some(r.get_i32()?),
        tag => {
            return Err(WireError::BadTag {
                what: "exit_code",
                tag,
            })
        }
    };
    let trap = decode_trap(r)?;
    let stats = decode_stats(r)?;
    let output = r.get_str()?.to_owned();
    let n = r.get_u64()?;
    // Each int is 4 bytes; reject counts the remaining input cannot hold.
    if n > (r.remaining() / 4) as u64 {
        return Err(WireError::BadLength);
    }
    let mut ints = Vec::with_capacity(n as usize);
    for _ in 0..n {
        ints.push(r.get_i32()?);
    }
    Ok(RunOutcome {
        exit_code,
        trap,
        stats,
        output,
        ints,
    })
}

/// Encodes a full [`MachineConfig`] — the `hbserve` protocol ships the
/// configuration verbatim so the server simulates exactly the client's
/// cell. The byte layout is tied to `core::fingerprint`'s stable hash by
/// construction: enum tags come from the shared `wire_tag` mappings and
/// the hierarchy fields from the one pinned `HierarchyConfig::to_words`
/// list, so the two formats cannot drift apart silently.
pub fn encode_config(w: &mut Writer, cfg: &MachineConfig) {
    match &cfg.hardbound {
        None => w.put_u8(0),
        Some(hb) => {
            w.put_u8(1);
            w.put_u8(hb.encoding.wire_tag());
            w.put_u8(hb.mode.wire_tag());
            put_bool(w, hb.check_uop);
        }
    }
    for word in cfg.hierarchy.to_words() {
        w.put_u64(word);
    }
    w.put_u64(cfg.fuel);
    w.put_u64(cfg.max_call_depth as u64);
    w.put_u8(cfg.meta_path.wire_tag());
}

fn get_usize(r: &mut Reader<'_>) -> Result<usize, WireError> {
    usize::try_from(r.get_u64()?).map_err(|_| WireError::BadLength)
}

/// Decodes a [`MachineConfig`] (inverse of [`encode_config`]).
///
/// # Errors
///
/// [`WireError`] on truncation or unknown enum tags.
pub fn decode_config(r: &mut Reader<'_>) -> Result<MachineConfig, WireError> {
    let hardbound = match r.get_u8()? {
        0 => None,
        1 => {
            let tag = r.get_u8()?;
            let encoding = PointerEncoding::from_wire_tag(tag).ok_or(WireError::BadTag {
                what: "encoding",
                tag,
            })?;
            let tag = r.get_u8()?;
            let mode = SafetyMode::from_wire_tag(tag).ok_or(WireError::BadTag {
                what: "safety mode",
                tag,
            })?;
            let check_uop = get_bool(r)?;
            Some(HardboundConfig {
                encoding,
                mode,
                check_uop,
            })
        }
        tag => {
            return Err(WireError::BadTag {
                what: "hardbound option",
                tag,
            })
        }
    };
    let mut words = [0u64; 12];
    for word in &mut words {
        *word = r.get_u64()?;
    }
    let hierarchy = HierarchyConfig::from_words(words).ok_or(WireError::BadLength)?;
    // Start from a baseline config and overwrite every field: the struct
    // is exhaustively re-populated here.
    let mut cfg = MachineConfig::baseline();
    cfg.hardbound = hardbound;
    cfg.hierarchy = hierarchy;
    cfg.fuel = r.get_u64()?;
    cfg.max_call_depth = get_usize(r)?;
    let tag = r.get_u8()?;
    cfg.meta_path = MetaPath::from_wire_tag(tag).ok_or(WireError::BadTag {
        what: "meta path",
        tag,
    })?;
    Ok(cfg)
}

/// Encodes one trace span event (for the `SPANS` response frames that
/// ship server-side spans back to the submitting client): the three ids,
/// the kind string, start/duration, then the tagged field list.
pub fn encode_span(w: &mut Writer, ev: &SpanEvent) {
    w.put_u64(ev.trace.0);
    w.put_u64(ev.span.0);
    w.put_u64(ev.parent.0);
    w.put_str(&ev.kind);
    w.put_u64(ev.start_us);
    w.put_u64(ev.dur_us);
    w.put_u32(ev.fields.len() as u32);
    for (name, value) in &ev.fields {
        w.put_str(name);
        match value {
            Field::U64(n) => {
                w.put_u8(0);
                w.put_u64(*n);
            }
            Field::Str(s) => {
                w.put_u8(1);
                w.put_str(s);
            }
        }
    }
}

/// Decodes a trace span event (inverse of [`encode_span`]).
///
/// # Errors
///
/// [`WireError`] on truncation, bad UTF-8, or an unknown field tag.
pub fn decode_span(r: &mut Reader<'_>) -> Result<SpanEvent, WireError> {
    let trace = TraceId(r.get_u64()?);
    let span = SpanId(r.get_u64()?);
    let parent = SpanId(r.get_u64()?);
    let kind = r.get_str()?.to_owned();
    let start_us = r.get_u64()?;
    let dur_us = r.get_u64()?;
    let count = r.get_u32()?;
    // Sanity bound: each field costs at least its name length prefix.
    if count as usize > r.remaining() {
        return Err(WireError::BadLength);
    }
    let mut fields = Vec::with_capacity(count.min(256) as usize);
    for _ in 0..count {
        let name = r.get_str()?.to_owned();
        let value = match r.get_u8()? {
            0 => Field::U64(r.get_u64()?),
            1 => Field::Str(r.get_str()?.to_owned()),
            tag => {
                return Err(WireError::BadTag {
                    what: "span field",
                    tag,
                })
            }
        };
        fields.push((name, value));
    }
    Ok(SpanEvent {
        trace,
        span,
        parent,
        kind,
        start_us,
        dur_us,
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_core::HardboundConfig;

    fn outcome() -> RunOutcome {
        let mut stats = ExecStats {
            uops: 123_456,
            setbound_uops: 7,
            loads: 99,
            ..ExecStats::default()
        };
        stats.hierarchy.tag_stall_cycles = 41;
        stats.data_pages = 17;
        RunOutcome {
            exit_code: Some(-3),
            trap: Some(Trap::BoundsViolation {
                pc: Pc {
                    func: FuncId(4),
                    index: 19,
                },
                addr: 0x0100_0010,
                base: 0x0100_0000,
                bound: 0x0100_000c,
                is_store: true,
            }),
            stats,
            output: "héllo\n".to_owned(),
            ints: vec![0, -1, i32::MAX, i32::MIN],
        }
    }

    #[test]
    fn outcome_round_trips() {
        let out = outcome();
        let mut w = Writer::new();
        encode_outcome(&mut w, &out);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(decode_outcome(&mut r).unwrap(), out);
        assert!(r.is_exhausted(), "no trailing bytes");
    }

    #[test]
    fn config_round_trips() {
        for cfg in [
            MachineConfig::default(),
            MachineConfig::baseline(),
            MachineConfig::hardbound(
                HardboundConfig::malloc_only(PointerEncoding::Intern11).with_check_uop(),
            )
            .with_fuel(42)
            .with_meta_path(MetaPath::Charge),
        ] {
            let mut w = Writer::new();
            encode_config(&mut w, &cfg);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            assert_eq!(decode_config(&mut r).unwrap(), cfg);
            assert!(r.is_exhausted());
        }
    }

    #[test]
    fn truncation_is_an_error_at_every_prefix() {
        let mut w = Writer::new();
        encode_outcome(&mut w, &outcome());
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(
                decode_outcome(&mut r).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn bad_tags_are_errors_not_panics() {
        let mut r = Reader::new(&[9]);
        assert_eq!(
            decode_outcome(&mut r),
            Err(WireError::BadTag {
                what: "exit_code",
                tag: 9
            })
        );
        let mut r = Reader::new(&[99]);
        assert!(matches!(
            decode_trap(&mut r),
            Err(WireError::BadTag { what: "trap", .. })
        ));
    }

    #[test]
    fn span_round_trips_and_rejects_truncation() {
        let ev = SpanEvent {
            trace: TraceId(0x1234_5678_9abc_def0),
            span: SpanId(7),
            parent: SpanId(0),
            kind: "ticket_exec".into(),
            start_us: 1_700_000_000_000_000,
            dur_us: 250,
            fields: vec![
                ("ticket".into(), Field::U64(3)),
                ("shard".into(), Field::Str("127.0.0.1:9".into())),
            ],
        };
        let mut w = Writer::new();
        encode_span(&mut w, &ev);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(decode_span(&mut r).unwrap(), ev);
        assert!(r.is_exhausted());
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            assert!(decode_span(&mut r).is_err(), "prefix of {cut} bytes");
        }
    }

    #[test]
    fn int_count_is_sanity_bounded() {
        // exit_code None, trap None, zeroed stats, empty output, then a
        // preposterous int count with no bytes behind it.
        let mut w = Writer::new();
        w.put_u8(0);
        w.put_u8(0);
        encode_stats(&mut w, &ExecStats::default());
        w.put_str("");
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(decode_outcome(&mut r), Err(WireError::BadLength));
    }
}
