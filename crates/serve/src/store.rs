//! The append-only log behind the persistent result store.
//!
//! Layout (all integers little-endian, written via [`crate::wire`]):
//!
//! ```text
//! header:  "HBSTORE\x01" (8B magic) | wire version (u32)
//!          | fingerprint version (u32) | format salt (u64)
//! record:  payload length (u32) | FNV-1a checksum of payload (u64)
//!          | payload = ProgramId (u64) | config fingerprint (u64)
//!          | encoded RunOutcome
//! ```
//!
//! Robustness rules, in order:
//!
//! * **Version/salt mismatch → clean cold start.** A log written under
//!   another wire or fingerprint version (or a foreign file at the path)
//!   is discarded wholesale — its keys could alias current ones — and the
//!   file is rewritten with a fresh header.
//! * **Corruption-tolerant load.** Records are read until the first bad
//!   one (truncated frame, checksum mismatch, undecodable payload); the
//!   file is truncated at the last good byte, so a crash mid-append (or a
//!   flipped bit) costs exactly the damaged tail, never the whole store.
//! * **Atomic rewrite-compaction.** [`StoreLog::compact`] writes a
//!   temporary file next to the log and `rename`s it over — readers and
//!   crashes observe either the old log or the new one, never a torn mix.
//! * **Single writer.** A sibling `.lock` file (holder PID inside)
//!   guards the log: the first opener owns appends; a concurrent opener
//!   **degrades to read-only** — it seeds from the log but appends
//!   nothing, so overlapping processes share warm state instead of
//!   appending at stale offsets and truncating each other's live file.
//!   A lock whose holder PID is dead (crash) is stolen.

use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use hardbound_core::{Fnv64, RunOutcome, FINGERPRINT_VERSION};
use hardbound_exec::{ProgramId, StoreKey};

use crate::wire::{decode_outcome, encode_outcome, Reader, Writer, WIRE_VERSION};

/// The 8-byte file magic.
const MAGIC: &[u8; 8] = b"HBSTORE\x01";
/// Header length in bytes: magic + two version words + salt.
const HEADER_LEN: usize = 8 + 4 + 4 + 8;
/// Per-record frame overhead: length word + checksum.
const FRAME_LEN: usize = 4 + 8;
/// Sanity cap on one record's payload (a RunOutcome is kilobytes; a
/// length beyond this means corruption, not data).
const MAX_RECORD: u32 = 64 << 20;

/// The format salt folded into the header: any change to either version
/// changes it, so a mismatched log cold-starts instead of aliasing keys.
#[must_use]
fn format_salt() -> u64 {
    let mut h = Fnv64::default();
    h.mix_u32(WIRE_VERSION);
    h.mix_u32(FINGERPRINT_VERSION);
    h.value()
}

fn checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv64::default();
    h.mix_raw(payload);
    h.value()
}

/// Counters describing the log's lifetime behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreLogStats {
    /// Records loaded at open (seeded into the store).
    pub loaded: u64,
    /// Bytes dropped at open because the tail was corrupt or truncated.
    pub dropped_bytes: u64,
    /// `1` when the log cold-started (missing file, bad magic, or a
    /// version/salt mismatch).
    pub cold_start: u64,
    /// Records appended since open.
    pub appended: u64,
    /// Explicit flushes of the append buffer.
    pub flushes: u64,
    /// Rewrite-compactions performed.
    pub compactions: u64,
    /// `1` when another live process holds the log's lock: this handle
    /// seeded from the file but appends/compactions are no-ops.
    pub read_only: u64,
}

/// The result of [`StoreLog::open`]: the log handle (positioned for
/// appends) plus every record that survived the load.
#[derive(Debug)]
pub struct LoadedStore {
    /// The open log.
    pub log: StoreLog,
    /// Surviving `(key, outcome)` records in file order (later duplicates
    /// of a key supersede earlier ones when seeded in order).
    pub entries: Vec<(StoreKey, RunOutcome)>,
}

/// An open append-only store log (see the module docs).
#[derive(Debug)]
pub struct StoreLog {
    path: PathBuf,
    /// `None` when another live process holds the lock: reads seeded,
    /// writes are no-ops.
    writer: Option<BufWriter<File>>,
    /// The lock file this handle owns (removed on drop), if any.
    lock: Option<PathBuf>,
    stats: StoreLogStats,
}

/// Tries to take the sibling lock file, writing this process's PID into
/// it. `Ok(true)` on ownership; `Ok(false)` when another **live** process
/// holds it. A lock whose recorded PID no longer exists (the holder
/// crashed) is stolen; an unreadable lock is treated as stale too.
fn acquire_lock(lock_path: &Path) -> io::Result<bool> {
    for _ in 0..2 {
        match OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(lock_path)
        {
            Ok(mut f) => {
                let _ = write!(f, "{}", std::process::id());
                return Ok(true);
            }
            Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                let holder = std::fs::read_to_string(lock_path)
                    .ok()
                    .and_then(|s| s.trim().parse::<u32>().ok());
                let alive = match holder {
                    // PID liveness via /proc is Linux-only; elsewhere be
                    // conservative and treat a recorded holder as live.
                    Some(pid) if cfg!(target_os = "linux") => {
                        Path::new(&format!("/proc/{pid}")).exists()
                    }
                    Some(_) => true,
                    // No PID yet: most likely we raced the owner in the
                    // microseconds between its `create_new` and its PID
                    // write — deleting its lock here would let two live
                    // writers loose on one log. Treat the lock as live
                    // unless it has stayed unreadable for several
                    // seconds (the owner crashed in that tiny window).
                    None => std::fs::metadata(lock_path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|t| t.elapsed().ok())
                        .is_none_or(|age| age < std::time::Duration::from_secs(10)),
                };
                if alive {
                    return Ok(false);
                }
                // Stale: remove and retry once (a racing second stealer
                // loses `create_new` and lands in the live check above).
                let _ = std::fs::remove_file(lock_path);
            }
            Err(e) => return Err(e),
        }
    }
    Ok(false)
}

impl StoreLog {
    /// Opens (or creates) the log at `path`, returning the handle and the
    /// surviving records. Corrupt tails are truncated in place;
    /// version-mismatched or foreign files cold-start (see module docs).
    /// When another live process holds the log's lock the handle is
    /// **read-only**: it seeds from the current file contents (without
    /// truncating anything out from under the owner) and every write is
    /// a counted no-op.
    ///
    /// # Errors
    ///
    /// Real I/O errors only (permissions, missing parent directory);
    /// corruption and lock contention are handled, not reported.
    pub fn open(path: impl AsRef<Path>) -> io::Result<LoadedStore> {
        let path = path.as_ref().to_path_buf();
        let lock_path = path.with_extension("lock");
        let owns_lock = acquire_lock(&lock_path)?;
        let mut stats = StoreLogStats::default();
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };

        let mut entries = Vec::new();
        let mut good_end = 0usize;
        let header_ok = bytes.len() >= HEADER_LEN && {
            let mut r = Reader::new(&bytes[..HEADER_LEN]);
            let mut magic = [0u8; 8];
            for m in &mut magic {
                *m = r.get_u8().expect("header length checked");
            }
            magic == *MAGIC
                && r.get_u32().expect("header") == WIRE_VERSION
                && r.get_u32().expect("header") == FINGERPRINT_VERSION
                && r.get_u64().expect("header") == format_salt()
        };

        if header_ok {
            good_end = HEADER_LEN;
            let mut pos = HEADER_LEN;
            while pos < bytes.len() {
                let Some(record) = read_record(&bytes[pos..]) else {
                    break;
                };
                let (consumed, key, outcome) = record;
                entries.push((key, outcome));
                pos += consumed;
                good_end = pos;
            }
            stats.loaded = entries.len() as u64;
            stats.dropped_bytes = (bytes.len() - good_end) as u64;
        } else {
            // A missing/empty file is a first run, not a recovery event;
            // a non-empty file with a foreign or mismatched header is the
            // version/salt cold start. Both get a fresh header below.
            stats.cold_start = u64::from(!bytes.is_empty());
        }

        if !owns_lock {
            // Another live process owns appends: seed from what parsed
            // and leave the file strictly alone (its owner may be
            // mid-append past our snapshot).
            stats.read_only = 1;
            stats.dropped_bytes = 0;
            let log = StoreLog {
                path,
                writer: None,
                lock: None,
                stats,
            };
            return Ok(LoadedStore { log, entries });
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        if header_ok {
            // Drop the corrupt tail (no-op when the whole file was good).
            file.set_len(good_end as u64)?;
            file.seek(SeekFrom::End(0))?;
        } else {
            file.set_len(0)?;
            file.write_all(&header_bytes())?;
        }
        let log = StoreLog {
            path,
            writer: Some(BufWriter::new(file)),
            lock: Some(lock_path),
            stats,
        };
        Ok(LoadedStore { log, entries })
    }

    /// Whether this handle owns the log (can append); `false` for the
    /// read-only degraded mode under lock contention.
    #[must_use]
    pub fn is_writable(&self) -> bool {
        self.writer.is_some()
    }

    /// Appends one `(key, outcome)` record to the buffered writer (call
    /// [`StoreLog::flush`] to make it durable). A no-op on a read-only
    /// handle.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append(&mut self, key: StoreKey, outcome: &RunOutcome) -> io::Result<()> {
        let Some(writer) = &mut self.writer else {
            return self.no_writer();
        };
        let payload = record_payload(key, outcome);
        writer.write_all(&frame(&payload))?;
        self.stats.appended += 1;
        Ok(())
    }

    /// The no-writer outcome: a benign no-op for the read-only degraded
    /// mode, a **loud error** for an owned log whose writer was lost by a
    /// failed compaction reopen — silence there would masquerade as
    /// persistence while every record lands in an unlinked inode.
    fn no_writer(&self) -> io::Result<()> {
        if self.lock.is_some() {
            return Err(io::Error::other(
                "store log writer lost after a failed compaction reopen",
            ));
        }
        Ok(())
    }

    /// Flushes buffered appends to the file. A no-op on a read-only
    /// handle.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn flush(&mut self) -> io::Result<()> {
        let Some(writer) = &mut self.writer else {
            return self.no_writer();
        };
        writer.flush()?;
        self.stats.flushes += 1;
        Ok(())
    }

    /// Atomically rewrites the log to hold exactly `entries`: writes a
    /// sibling temporary file and renames it over the log, then reopens
    /// the append handle. Drops records superseded by invalidation and
    /// duplicate appends — the log's steady-state size becomes the store's
    /// live size.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the original log survives any failure
    /// before the rename.
    pub fn compact<'a>(
        &mut self,
        entries: impl Iterator<Item = (StoreKey, &'a RunOutcome)>,
    ) -> io::Result<()> {
        let Some(writer) = &mut self.writer else {
            // Read-only handles never rewrite the owner's file; a broken
            // owned handle reports itself instead.
            return self.no_writer();
        };
        let tmp_path = self.path.with_extension("tmp");
        {
            let mut tmp = BufWriter::new(File::create(&tmp_path)?);
            tmp.write_all(&header_bytes())?;
            for (key, outcome) in entries {
                tmp.write_all(&frame(&record_payload(key, outcome)))?;
            }
            tmp.flush()?;
        }
        // Make sure nothing buffered lands *after* the rename and corrupts
        // the fresh file's tail through the stale handle.
        writer.flush()?;
        std::fs::rename(&tmp_path, &self.path)?;
        // From here the old handle points at an unlinked inode: the
        // writer MUST be replaced or dropped, never kept — appends
        // through it would "succeed" into a file that vanishes at exit.
        self.writer = None;
        let mut file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        file.seek(SeekFrom::End(0))?;
        self.writer = Some(BufWriter::new(file));
        self.stats.compactions += 1;
        Ok(())
    }

    /// The log's file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> StoreLogStats {
        self.stats
    }
}

impl Drop for StoreLog {
    /// Releases the lock file (owned handles only) so the next process
    /// can take ownership without waiting for staleness detection.
    fn drop(&mut self) {
        if let Some(lock) = &self.lock {
            let _ = std::fs::remove_file(lock);
        }
    }
}

fn header_bytes() -> Vec<u8> {
    let mut w = Writer::new();
    for &b in MAGIC {
        w.put_u8(b);
    }
    w.put_u32(WIRE_VERSION);
    w.put_u32(FINGERPRINT_VERSION);
    w.put_u64(format_salt());
    w.into_bytes()
}

fn record_payload(key: StoreKey, outcome: &RunOutcome) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(key.0 .0);
    w.put_u64(key.1);
    encode_outcome(&mut w, outcome);
    w.into_bytes()
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(payload.len() as u32);
    w.put_u64(checksum(payload));
    let mut bytes = w.into_bytes();
    bytes.extend_from_slice(payload);
    bytes
}

/// Parses one record at the start of `bytes`: `Some((bytes consumed, key,
/// outcome))`, or `None` when the frame is truncated, the checksum fails,
/// or the payload does not decode — the load stops (and truncates) there.
fn read_record(bytes: &[u8]) -> Option<(usize, StoreKey, RunOutcome)> {
    if bytes.len() < FRAME_LEN {
        return None;
    }
    let mut r = Reader::new(bytes);
    let len = r.get_u32().ok()?;
    if len > MAX_RECORD {
        return None;
    }
    let sum = r.get_u64().ok()?;
    let total = FRAME_LEN + len as usize;
    if bytes.len() < total {
        return None;
    }
    let payload = &bytes[FRAME_LEN..total];
    if checksum(payload) != sum {
        return None;
    }
    let mut r = Reader::new(payload);
    let pid = ProgramId(r.get_u64().ok()?);
    let fp = r.get_u64().ok()?;
    let outcome = decode_outcome(&mut r).ok()?;
    if !r.is_exhausted() {
        return None; // trailing garbage inside a framed record
    }
    Some((total, (pid, fp), outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_core::ExecStats;

    fn outcome(n: i32) -> RunOutcome {
        RunOutcome {
            exit_code: Some(n),
            trap: None,
            stats: ExecStats {
                uops: n as u64 * 10,
                ..ExecStats::default()
            },
            output: format!("out{n}"),
            ints: vec![n],
        }
    }

    fn key(n: u64) -> StoreKey {
        (ProgramId(n), n.wrapping_mul(0x9e37_79b9))
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hb-storelog-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn append_flush_reload_round_trips() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let mut loaded = StoreLog::open(&path).unwrap();
            assert_eq!(loaded.entries.len(), 0);
            assert_eq!(loaded.log.stats().cold_start, 0, "fresh file, not cold");
            for n in 0..5 {
                loaded.log.append(key(n), &outcome(n as i32)).unwrap();
            }
            loaded.log.flush().unwrap();
        }
        let loaded = StoreLog::open(&path).unwrap();
        assert_eq!(loaded.log.stats().loaded, 5);
        assert_eq!(loaded.log.stats().dropped_bytes, 0);
        for (n, (k, out)) in loaded.entries.iter().enumerate() {
            assert_eq!(*k, key(n as u64));
            assert_eq!(*out, outcome(n as i32));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn corrupt_tail_is_truncated_not_fatal() {
        let path = temp_path("corrupt");
        let _ = std::fs::remove_file(&path);
        {
            let mut loaded = StoreLog::open(&path).unwrap();
            for n in 0..3 {
                loaded.log.append(key(n), &outcome(n as i32)).unwrap();
            }
            loaded.log.flush().unwrap();
        }
        // Flip one byte inside the last record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();

        let loaded = StoreLog::open(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2, "last record dropped");
        assert!(loaded.log.stats().dropped_bytes > 0);
        assert_eq!(loaded.log.stats().cold_start, 0);
        // The file was truncated in place: a reload sees a clean log.
        drop(loaded);
        let reloaded = StoreLog::open(&path).unwrap();
        assert_eq!(reloaded.entries.len(), 2);
        assert_eq!(reloaded.log.stats().dropped_bytes, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_mid_record_recovers_the_prefix() {
        let path = temp_path("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let mut loaded = StoreLog::open(&path).unwrap();
            for n in 0..3 {
                loaded.log.append(key(n), &outcome(n as i32)).unwrap();
            }
            loaded.log.flush().unwrap();
        }
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let loaded = StoreLog::open(&path).unwrap();
        assert_eq!(loaded.entries.len(), 2, "the torn record is lost, no more");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_mismatch_cold_starts() {
        let path = temp_path("version");
        let _ = std::fs::remove_file(&path);
        {
            let mut loaded = StoreLog::open(&path).unwrap();
            loaded.log.append(key(1), &outcome(1)).unwrap();
            loaded.log.flush().unwrap();
        }
        // Corrupt the header's version word.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let loaded = StoreLog::open(&path).unwrap();
        assert_eq!(loaded.entries.len(), 0, "foreign format is discarded");
        assert_eq!(loaded.log.stats().cold_start, 1);
        // The file is now a clean current-format log again.
        drop(loaded);
        let reloaded = StoreLog::open(&path).unwrap();
        assert_eq!(reloaded.log.stats().cold_start, 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn concurrent_opener_degrades_to_read_only() {
        let path = temp_path("locked");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("lock"));
        let mut owner = StoreLog::open(&path).unwrap();
        assert!(owner.log.is_writable());
        owner.log.append(key(1), &outcome(1)).unwrap();
        owner.log.flush().unwrap();

        // A second handle while the owner lives: seeded, but read-only —
        // its writes are no-ops and the owner's file is untouched.
        let mut second = StoreLog::open(&path).unwrap();
        assert!(!second.log.is_writable());
        assert_eq!(second.log.stats().read_only, 1);
        assert_eq!(second.entries, vec![(key(1), outcome(1))]);
        let before = std::fs::metadata(&path).unwrap().len();
        second.log.append(key(2), &outcome(2)).unwrap();
        second.log.flush().unwrap();
        second.log.compact(std::iter::empty()).unwrap();
        assert_eq!(second.log.stats().appended, 0);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), before);

        // The owner keeps appending safely; dropping it releases the
        // lock, so a fresh open owns the log again.
        owner.log.append(key(3), &outcome(3)).unwrap();
        owner.log.flush().unwrap();
        drop(second);
        drop(owner);
        let reopened = StoreLog::open(&path).unwrap();
        assert!(reopened.log.is_writable(), "released lock is re-acquired");
        assert_eq!(reopened.entries.len(), 2);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("lock"));
    }

    #[test]
    fn stale_lock_from_a_dead_process_is_stolen() {
        let path = temp_path("stale");
        let _ = std::fs::remove_file(&path);
        let lock = path.with_extension("lock");
        // A PID that cannot be a live process (PID_MAX_LIMIT is 2^22).
        std::fs::write(&lock, "4194999").unwrap();
        let loaded = StoreLog::open(&path).unwrap();
        assert!(
            loaded.log.is_writable(),
            "a dead holder's lock must be stolen"
        );
        drop(loaded);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&lock);
    }

    #[test]
    fn compaction_rewrites_atomically_and_appends_continue() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        let mut loaded = StoreLog::open(&path).unwrap();
        for n in 0..10 {
            loaded.log.append(key(n % 2), &outcome(n as i32)).unwrap();
        }
        loaded.log.flush().unwrap();
        let fat = std::fs::metadata(&path).unwrap().len();

        let live = [(key(0), outcome(8)), (key(1), outcome(9))];
        loaded
            .log
            .compact(live.iter().map(|(k, o)| (*k, o)))
            .unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() < fat);
        loaded.log.append(key(7), &outcome(7)).unwrap();
        loaded.log.flush().unwrap();

        let reloaded = StoreLog::open(&path).unwrap();
        assert_eq!(
            reloaded.entries,
            vec![
                (key(0), outcome(8)),
                (key(1), outcome(9)),
                (key(7), outcome(7)),
            ]
        );
        let _ = std::fs::remove_file(&path);
    }
}
