//! Consistent-hash shard routing for the `hbserve` cluster.
//!
//! A cluster is an ordered list of `hbserve` addresses (the comma-separated
//! `HB_SERVE_ADDR` form); shard *i* of *n* is the server at index *i*. Cell
//! ownership is decided by **consistent hashing**: each shard projects
//! [`POINTS_PER_SHARD`] points onto a 64-bit ring (FNV-1a of a pinned
//! `("hbshard", shard, replica)` encoding — the same [`Fnv64`] the store
//! keys use), and a cell belongs to the first shard point at or after the
//! hash of its store key `(ProgramId, config fingerprint)`.
//!
//! Both sides of the wire compute the same ring from nothing but the shard
//! *count*: the client (`hardbound_runtime::run_jobs`) routes cells with
//! it, and a server started with `--shard k/n` uses it to tell owned cells
//! from foreign ones (foreign cells are **served, not rejected** — they are
//! how the client re-routes a dead shard's cells, so strict ownership
//! would turn failover into an outage). Consistent hashing keeps the map
//! stable under membership change: going from `n` to `n+1` shards moves
//! only the keys the new shard's points capture, so a grown cluster keeps
//! most of its warm stores valid.

use hardbound_core::Fnv64;

/// Ring points projected per shard. Enough that key ranges split evenly
/// (the imbalance of the max-loaded shard is a few percent at 64 points);
/// small enough that building a ring is trivially cheap.
pub const POINTS_PER_SHARD: usize = 64;

/// The hash a cell is routed by: its result-store key, reduced to one ring
/// position. Client and server both call this with the same
/// `(ProgramId.0, config_fingerprint)` pair, so routing agrees end to end.
#[must_use]
pub fn cell_point(program_id: u64, config_fingerprint: u64) -> u64 {
    let mut h = Fnv64::default();
    h.mix_bytes(b"hbcell");
    h.mix_u64(program_id);
    h.mix_u64(config_fingerprint);
    h.value()
}

/// The consistent-hash ring over `n` shards (see the module docs).
#[derive(Clone, Debug)]
pub struct ShardRing {
    /// `(ring position, shard index)`, sorted by position.
    points: Vec<(u64, u32)>,
    shards: usize,
}

impl ShardRing {
    /// The ring over `shards` shards (at least 1; a single shard owns
    /// everything and the ring degenerates to a constant).
    #[must_use]
    pub fn new(shards: usize) -> ShardRing {
        let shards = shards.max(1);
        let mut points = Vec::with_capacity(shards * POINTS_PER_SHARD);
        for shard in 0..shards {
            for replica in 0..POINTS_PER_SHARD {
                let mut h = Fnv64::default();
                h.mix_bytes(b"hbshard");
                h.mix_u64(shard as u64);
                h.mix_u64(replica as u64);
                points.push((h.value(), shard as u32));
            }
        }
        // Ties (astronomically unlikely 64-bit collisions) break on the
        // lower shard index, deterministically on both sides of the wire.
        points.sort_unstable();
        ShardRing { points, shards }
    }

    /// Number of shards on the ring.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning ring position `point`: the first shard point at or
    /// after it, wrapping past the top of the ring.
    #[must_use]
    pub fn owner(&self, point: u64) -> usize {
        let i = self.points.partition_point(|&(p, _)| p < point);
        let (_, shard) = self.points[if i == self.points.len() { 0 } else { i }];
        shard as usize
    }

    /// The shard owning the cell `(program_id, config_fingerprint)`.
    #[must_use]
    pub fn owner_of_cell(&self, program_id: u64, config_fingerprint: u64) -> usize {
        self.owner(cell_point(program_id, config_fingerprint))
    }

    /// Fallback order for a cell whose owner is unreachable: every shard,
    /// starting at the owner and walking the shard list cyclically. The
    /// client tries them in order, so a dead shard's cells land
    /// deterministically on its successor (and every client agrees on the
    /// successor, keeping the re-routed warm state in one place).
    #[must_use]
    pub fn route(&self, point: u64) -> Vec<usize> {
        self.route_from(self.owner(point))
    }

    /// [`ShardRing::route`] given the owner directly — a scatter client
    /// that has already grouped cells by owner shares one route per group.
    #[must_use]
    pub fn route_from(&self, owner: usize) -> Vec<usize> {
        (0..self.shards)
            .map(|step| (owner + step) % self.shards)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let a = ShardRing::new(3);
        let b = ShardRing::new(3);
        let mut seen = [false; 3];
        for k in 0..10_000u64 {
            let p = cell_point(k, k.wrapping_mul(0x9e37_79b9));
            assert_eq!(a.owner(p), b.owner(p), "rings must agree");
            seen[a.owner(p)] = true;
        }
        assert_eq!(seen, [true; 3], "every shard owns some keys");
    }

    #[test]
    fn load_splits_roughly_evenly() {
        let ring = ShardRing::new(3);
        let mut counts = [0usize; 3];
        for k in 0..30_000u64 {
            counts[ring.owner(cell_point(k, !k))] += 1;
        }
        for &c in &counts {
            // 3 shards × 64 points: each within a loose factor of the mean.
            assert!((4_000..=16_000).contains(&c), "skewed ring: {counts:?}");
        }
    }

    #[test]
    fn growing_the_ring_moves_only_a_fraction_of_keys() {
        let small = ShardRing::new(3);
        let big = ShardRing::new(4);
        let moved = (0..10_000u64)
            .filter(|&k| {
                let p = cell_point(k, k);
                let owner = small.owner(p);
                let grown = big.owner(p);
                grown != owner && grown != 3
            })
            .count();
        // Consistent hashing: keys either stay put or move to the new
        // shard; none shuffle between surviving shards.
        assert_eq!(moved, 0, "{moved} keys shuffled between old shards");
    }

    #[test]
    fn route_starts_at_the_owner_and_visits_everyone_once() {
        let ring = ShardRing::new(4);
        let p = cell_point(7, 9);
        let route = ring.route(p);
        assert_eq!(route.len(), 4);
        assert_eq!(route[0], ring.owner(p));
        let mut sorted = route.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = ShardRing::new(1);
        assert_eq!(ring.owner(0), 0);
        assert_eq!(ring.owner(u64::MAX), 0);
        assert_eq!(ring.route(42), vec![0]);
    }
}
