//! [`PersistentService`] — a corpus service whose result store survives
//! the process.
//!
//! The wrapper owns a [`CorpusService`] and, when opened with a store
//! path (`HB_STORE_PATH`), a [`StoreLog`]: at open, every surviving log
//! record is seeded into the in-memory store; after every batch, freshly
//! computed outcomes are appended and the log is flushed (the process-wide
//! service in `hardbound_runtime` is a static that never drops, so
//! durability cannot wait for `Drop` — though `Drop` flushes too, for
//! short-lived services). [`PersistentService::checkpoint`] compacts the
//! log down to the store's live entries with an atomic rewrite.
//!
//! Because the store keys are the **stable fingerprints** of
//! `hardbound_core::fingerprint` and execution is deterministic in the
//! key, a warm start from disk replays byte-identical outcomes with zero
//! re-simulated cells — pinned by this crate's persistence differential
//! and gated in CI (`HB_PERSIST_GATE`).

use std::io;
use std::path::Path;

use hardbound_core::{Machine, MachineConfig, RunOutcome};
use hardbound_exec::service::Job;
use hardbound_exec::{CorpusService, ProgramId, ServiceStats};
use hardbound_isa::Program;

use crate::store::{StoreLog, StoreLogStats};

/// A point-in-time snapshot of the persistent service's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PersistStats {
    /// The in-memory service (store hits/misses/evictions, decode cache).
    pub service: ServiceStats,
    /// The log's counters; `None` when running without persistence.
    pub log: Option<StoreLogStats>,
}

/// The persistent corpus service (see the module docs).
#[derive(Debug)]
pub struct PersistentService {
    svc: CorpusService,
    log: Option<StoreLog>,
}

impl PersistentService {
    /// A service with no persistence: behaves exactly like
    /// [`CorpusService::new`].
    #[must_use]
    pub fn new(workers: usize) -> PersistentService {
        PersistentService {
            svc: CorpusService::new(workers),
            log: None,
        }
    }

    /// Opens a service backed by the log at `path`: surviving records are
    /// seeded into the store (corrupt tails truncated, mismatched formats
    /// cold-started — see [`StoreLog::open`]), and every future batch's
    /// fresh results are appended and flushed.
    ///
    /// # Errors
    ///
    /// Real I/O errors only (permissions, missing parent directory).
    pub fn open(workers: usize, path: impl AsRef<Path>) -> io::Result<PersistentService> {
        let loaded = StoreLog::open(path)?;
        let mut svc = CorpusService::new(workers);
        svc.store_mut().set_journal(true);
        for (key, outcome) in loaded.entries {
            svc.store_mut().seed(key, outcome);
        }
        Ok(PersistentService {
            svc,
            log: Some(loaded.log),
        })
    }

    /// Whether a log backs this service.
    #[must_use]
    pub fn is_persistent(&self) -> bool {
        self.log.is_some()
    }

    /// Enables or disables the result store (`HB_RESULT_CACHE`); with the
    /// store off nothing new is persisted either.
    pub fn set_result_cache(&mut self, on: bool) {
        self.svc.set_result_cache(on);
    }

    /// Sets the store's idle TTL (`HB_STORE_TTL` / `hbserve --ttl`):
    /// entries untouched for that long are garbage-collected at the start
    /// of the next batch. Expired entries persist in the log until the
    /// next [`PersistentService::checkpoint`] compacts them away (they
    /// would re-seed at the next open, then idle out again).
    pub fn set_ttl(&mut self, ttl: Option<std::time::Duration>) {
        self.svc.set_ttl(ttl);
    }

    /// The wrapped in-memory service (tests and diagnostics).
    #[must_use]
    pub fn service(&self) -> &CorpusService {
        &self.svc
    }

    /// Runs `jobs` through the in-memory service (store replays, shard
    /// execution — see [`CorpusService::run_batch`]), then appends every
    /// freshly computed outcome to the log and flushes it.
    pub fn run_batch<T, F>(&mut self, jobs: &[Job<T>], build: F) -> Vec<RunOutcome>
    where
        T: Sync,
        F: Fn(Program, MachineConfig, &T) -> Machine + Sync,
    {
        let outs = self.svc.run_batch(jobs, build);
        self.persist_dirty();
        outs
    }

    /// [`PersistentService::run_batch`] for a single job.
    pub fn run_one<T, F>(&mut self, job: &Job<T>, build: F) -> RunOutcome
    where
        T: Sync,
        F: Fn(Program, MachineConfig, &T) -> Machine + Sync,
    {
        let out = self.svc.run_one(job, build);
        self.persist_dirty();
        out
    }

    /// Drains the store's insert journal into the log. Keys evicted or
    /// invalidated since their insert no longer resolve and are skipped —
    /// the log only ever holds outcomes the store vouched for.
    fn persist_dirty(&mut self) {
        let Some(log) = &mut self.log else { return };
        let dirty = self.svc.store_mut().take_dirty();
        if dirty.is_empty() {
            return;
        }
        let store = self.svc.store();
        for key in dirty {
            if let Some(outcome) = store.peek(&key) {
                if let Err(e) = log.append(key, outcome) {
                    eprintln!("hardbound-serve: store append failed: {e} (entry lost)");
                }
            }
        }
        if let Err(e) = log.flush() {
            eprintln!("hardbound-serve: store flush failed: {e}");
        }
    }

    /// Compacts the log to exactly the store's live entries with an
    /// atomic rewrite (drops superseded appends and invalidated keys).
    /// A no-op without persistence.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the old log survives failures.
    pub fn checkpoint(&mut self) -> io::Result<()> {
        let Some(log) = &mut self.log else {
            return Ok(());
        };
        log.compact(self.svc.store().entries().map(|(k, o)| (*k, o)))?;
        log.flush()
    }

    /// Invalidates one program image everywhere (see
    /// [`CorpusService::invalidate_program`]). The log's stale records
    /// are harmless — their keys are never looked up again if the image
    /// changed, and replay is deterministic if it did not — and are
    /// dropped by the next [`PersistentService::checkpoint`].
    pub fn invalidate_program(&mut self, pid: ProgramId) -> (usize, u64) {
        self.svc.invalidate_program(pid)
    }

    /// Snapshot of the service's and the log's counters.
    #[must_use]
    pub fn stats(&self) -> PersistStats {
        PersistStats {
            service: self.svc.stats(),
            log: self.log.as_ref().map(StoreLog::stats),
        }
    }
}

impl Drop for PersistentService {
    /// Flushes any buffered appends — short-lived services (tests,
    /// `hbserve` shutdown) get durability without an explicit checkpoint.
    fn drop(&mut self) {
        if let Some(log) = &mut self.log {
            let _ = log.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_core::MachineConfig;
    use hardbound_isa::{CmpOp, FunctionBuilder, Program, Reg};
    use std::path::PathBuf;

    fn counting_program(limit: i32) -> Program {
        let mut f = FunctionBuilder::new("main", 0);
        f.li(Reg::A0, 0);
        let head = f.bind_label();
        f.addi(Reg::A0, Reg::A0, 1);
        let done = f.new_label();
        f.branch(CmpOp::Ge, Reg::A0, limit, done);
        f.jump(head);
        f.bind(done);
        f.li(Reg::A0, 0);
        f.halt();
        Program::with_entry(vec![f.finish()])
    }

    fn job(limit: i32) -> Job<()> {
        Job {
            program: counting_program(limit),
            config: MachineConfig::default().with_fuel(1_000_000),
            salt: 0,
            tag: (),
        }
    }

    fn build(p: Program, cfg: MachineConfig, (): &()) -> Machine {
        Machine::new(p, cfg)
    }

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hb-persist-{}-{tag}.bin", std::process::id()))
    }

    #[test]
    fn reopen_replays_without_reexecuting() {
        let path = temp_path("reopen");
        let _ = std::fs::remove_file(&path);
        let jobs: Vec<Job<()>> = (0..6).map(|k| job(10 + k)).collect();

        let mut svc = PersistentService::open(2, &path).unwrap();
        let cold = svc.run_batch(&jobs, build);
        assert_eq!(svc.stats().service.store.misses, 6);
        assert_eq!(svc.stats().log.unwrap().appended, 6);
        drop(svc);

        // "Restart": a brand-new service whose only state is the file.
        let mut svc = PersistentService::open(2, &path).unwrap();
        assert_eq!(svc.stats().log.unwrap().loaded, 6);
        let warm = svc.run_batch(&jobs, build);
        assert_eq!(cold, warm, "cross-process replay must be byte-identical");
        let stats = svc.stats();
        assert_eq!(stats.service.store.misses, 0, "zero re-simulated cells");
        assert_eq!(stats.service.store.hits, 6);
        assert_eq!(
            stats.service.cache.decoded, 0,
            "nothing decoded on a pure replay"
        );
        assert_eq!(
            stats.log.unwrap().appended,
            0,
            "replays append nothing to the log"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn checkpoint_compacts_duplicate_appends() {
        let path = temp_path("checkpoint");
        let _ = std::fs::remove_file(&path);
        let jobs: Vec<Job<()>> = (0..4).map(|k| job(10 + k)).collect();
        let mut svc = PersistentService::open(1, &path).unwrap();
        svc.run_batch(&jobs, build);
        // Invalidate + re-run: the log now holds both generations.
        let pid = jobs[0].key().0;
        assert_eq!(svc.invalidate_program(pid).0, 1);
        svc.run_batch(&jobs, build);
        assert_eq!(svc.stats().log.unwrap().appended, 5);
        let fat = std::fs::metadata(&path).unwrap().len();
        svc.checkpoint().unwrap();
        assert!(std::fs::metadata(&path).unwrap().len() < fat);
        drop(svc);

        let svc = PersistentService::open(1, &path).unwrap();
        assert_eq!(svc.stats().log.unwrap().loaded, 4, "live entries survive");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn without_persistence_everything_still_works() {
        let jobs: Vec<Job<()>> = (0..3).map(|k| job(10 + k)).collect();
        let mut svc = PersistentService::new(2);
        let a = svc.run_batch(&jobs, build);
        let b = svc.run_batch(&jobs, build);
        assert_eq!(a, b);
        assert!(!svc.is_persistent());
        assert_eq!(svc.stats().log, None);
        assert!(svc.checkpoint().is_ok(), "checkpoint is a no-op");
    }

    #[test]
    fn corrupt_log_recomputes_exactly_the_lost_cells() {
        let path = temp_path("recover");
        let _ = std::fs::remove_file(&path);
        let jobs: Vec<Job<()>> = (0..5).map(|k| job(10 + k)).collect();
        let mut svc = PersistentService::open(1, &path).unwrap();
        let cold = svc.run_batch(&jobs, build);
        drop(svc);

        // Tear the last record.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        let mut svc = PersistentService::open(1, &path).unwrap();
        let log = svc.stats().log.unwrap();
        assert_eq!(log.loaded, 4);
        assert!(log.dropped_bytes > 0);
        let warm = svc.run_batch(&jobs, build);
        assert_eq!(cold, warm, "recovery must not change outcomes");
        let stats = svc.stats();
        assert_eq!(stats.service.store.misses, 1, "exactly the lost cell");
        assert_eq!(stats.service.store.hits, 4);
        assert_eq!(
            stats.log.unwrap().appended,
            1,
            "the recomputed cell is re-persisted"
        );
        let _ = std::fs::remove_file(&path);
    }
}
