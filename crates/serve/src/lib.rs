//! `hardbound-serve` — the corpus service across process and machine
//! boundaries.
//!
//! The corpus service (`hardbound_exec::service`) amortizes decode work
//! and whole-run results *within* one process; every fresh `hbrun` and
//! every CI invocation still starts cold. This crate extends the service
//! across the two remaining boundaries:
//!
//! * [`wire`] — a pinned, versioned **binary codec** (std-only; the build
//!   container has no serde) for [`RunOutcome`](hardbound_core::RunOutcome),
//!   [`MachineConfig`](hardbound_core::MachineConfig) and store records.
//!   Together with the stable fingerprints of
//!   `hardbound_core::fingerprint`, bytes written by one process mean the
//!   same thing to every other.
//! * [`store`] — an **append-only log** backing the result store
//!   (`HB_STORE_PATH`): corruption-tolerant load (truncate at the first
//!   bad record), version/salt mismatch → clean cold start, and atomic
//!   rewrite-compaction.
//! * [`persist`] — [`PersistentService`], a
//!   [`CorpusService`](hardbound_exec::CorpusService) whose store survives
//!   the process: entries load at open, fresh results append after every
//!   batch, and the log flushes on drop and on an explicit
//!   [`PersistentService::checkpoint`].
//! * [`net`] — a `TcpListener` front end speaking a length-prefixed
//!   request/response protocol with work-queue semantics: clients submit
//!   cell grids, the server dedups against the store and drains misses
//!   through the lock-free `exec::batch` scheduler, and results stream
//!   back in chunks. Protocol v2 adds a deduplicated listing table and a
//!   ticket/watch flow. `hbserve` (in `hardbound-report`) is the binary;
//!   `hardbound_runtime::run_jobs` is the transparent client
//!   (`HB_SERVE_ADDR`).
//! * [`shard`] — consistent-hash routing for the **hbserve cluster**: a
//!   comma-separated `HB_SERVE_ADDR` shard list partitions the store key
//!   space by [`ShardRing`], and clients fail over a dead shard's cells
//!   along the ring's deterministic fallback route.
//!
//! Replay — from disk or from the far side of a socket — is
//! **byte-identical** to in-process execution; the differential suites at
//! the workspace root and in `crates/report/tests` pin it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod net;
pub mod persist;
pub mod shard;
pub mod store;
pub mod wire;

pub use net::{Client, RemoteServerStats, ServeError, Server, TicketStatus, WireJob, MAX_GRID};
pub use persist::{PersistStats, PersistentService};
pub use shard::{cell_point, ShardRing, POINTS_PER_SHARD};
pub use store::{StoreLog, StoreLogStats};
pub use wire::{Reader, WireError, Writer, WIRE_VERSION};
