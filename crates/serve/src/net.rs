//! The `hbserve` socket protocol: a length-prefixed request/response
//! framing over TCP with **work-queue semantics**.
//!
//! A client submits a grid of cells in one frame; the server dedups each
//! cell against the shared (persistent) result store, drains the misses
//! through the existing lock-free `exec::batch` scheduler in bounded
//! **chunks**, and streams each chunk's outcomes back as soon as it
//! completes — the client consumes results incrementally while later
//! chunks still execute, and concurrent clients interleave at chunk
//! granularity because the service lock is released between chunks.
//! Cross-client dedup falls out of the shared store: a cell one client
//! computed replays for every later submitter.
//!
//! ## Frames
//!
//! Every frame is `length (u32, LE) | kind (u8) | payload`; the length
//! counts the kind byte plus the payload. Requests:
//!
//! | kind | payload |
//! |---|---|
//! | `SUBMIT` | job count (u32), then per job: program listing (str), [`MachineConfig`], salt (u64), tag (u64) |
//! | `SUBMIT2` | listing count (u32), the **deduplicated listing table** (strs), then job count (u32), per job: listing index (u32), [`MachineConfig`], salt (u64), tag (u64) |
//! | `SUBMIT3` | trace id (u64), parent span id (u64), then a `SUBMIT2` payload — the trace-context flavour of `SUBMIT2` |
//! | `WATCH` | ticket id (u64) |
//! | `POLL` | ticket id (u64) |
//! | `STATS` | empty |
//! | `METRICS` | empty |
//! | `PROFILE` | empty |
//! | `SHUTDOWN` | empty |
//!
//! Responses: `RESULTS` (start index u32, count u32, then `count` encoded
//! [`RunOutcome`]s), `DONE` (total results u32), `TICKET` (ticket id u64,
//! job count u32), `TICKET_STATUS` (total u32, ready u32, finished u8,
//! failed u8), `STATS` (counters), `SPANS` (span count u32, then encoded
//! trace spans — only ever sent while watching a ticket that was submitted
//! *with* trace context), `METRICS` (Prometheus-style text), `PROFILE`
//! (the shard's accumulated hot-spot profile in `Profile::to_text` form —
//! populated when the server runs with `HB_PROF=1`; pre-profile servers
//! answer `ERR "unknown request kind"` and clients treat that as an empty
//! profile), and `ERR` (diagnostic string — the whole request is
//! rejected; nothing executed).
//!
//! ## Version negotiation
//!
//! `SUBMIT3` carries the client's trace context so shards can stamp
//! server-side spans under the submitter's `TraceId` and return them with
//! `WATCH` (as a `SPANS` frame before `DONE`). Interop is by fallback, not
//! by handshake: an old server answers `SUBMIT3` with `ERR "unknown
//! request kind"` on a still-open connection, and the client transparently
//! re-submits via plain `SUBMIT2` (losing only the server-side spans); an
//! old client never sends `SUBMIT3` and never watches a traced ticket, so
//! it never sees a `SPANS` frame.
//!
//! `SUBMIT` is the protocol-v1 synchronous flow: the submitting connection
//! streams `RESULTS` frames until `DONE`. `SUBMIT2` is the v2
//! **ticket/watch** flow for long corpus grids: cells reference a
//! deduplicated listing table (a mode sweep over one program ships — and
//! parses — the listing once instead of per cell), the server enqueues the
//! grid on its work queue and answers `TICKET` immediately, and the client
//! collects results with `WATCH` (stream until `DONE`) or `POLL` (one
//! status frame) — on the same connection or any later one, so a dropped
//! connection loses nothing the server already computed. A finished ticket
//! is consumed by the `WATCH` that drains it.
//!
//! Programs travel as their **assembly listing** — the workspace's pinned
//! program serialization (round-trips through `isa::parse_program`, and
//! its bytes are exactly what `ProgramId` hashes), so a re-parsed program
//! lands on the same store keys as the client's and byte-identity holds
//! end to end.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use hardbound_core::{Machine, MachineConfig, RunOutcome};
use hardbound_exec::service::Job;
use hardbound_isa::Program;
use hardbound_telemetry::{
    trace, Counter, Gauge, Histogram, Registry, SpanEvent, SpanId, SpanTimer, TraceCtx, TraceId,
};

use crate::persist::PersistentService;
use crate::shard::ShardRing;
use crate::wire::{
    decode_config, decode_outcome, decode_span, encode_config, encode_outcome, encode_span, Reader,
    WireError, Writer,
};

/// Request kinds (client → server).
const REQ_SUBMIT: u8 = 1;
const REQ_STATS: u8 = 2;
const REQ_SHUTDOWN: u8 = 3;
const REQ_SUBMIT2: u8 = 4;
const REQ_WATCH: u8 = 5;
const REQ_POLL: u8 = 6;
const REQ_SUBMIT3: u8 = 7;
const REQ_METRICS: u8 = 8;
const REQ_PROFILE: u8 = 9;
/// Response kinds (server → client).
const RESP_RESULTS: u8 = 16;
const RESP_DONE: u8 = 17;
const RESP_STATS: u8 = 18;
const RESP_ERR: u8 = 19;
const RESP_TICKET: u8 = 20;
const RESP_TICKET_STATUS: u8 = 21;
const RESP_SPANS: u8 = 22;
const RESP_METRICS: u8 = 23;
const RESP_PROFILE: u8 = 24;

/// Cells executed (and streamed) per service-lock acquisition: small
/// enough that results flow back while the tail still runs and that
/// concurrent clients interleave, large enough to amortize the lock.
const CHUNK: usize = 32;

/// Sanity cap on one frame (a submission of thousands of cells fits in a
/// few MB; anything past this is a protocol error, not data).
const MAX_FRAME: u32 = 1 << 30;

/// Hard cap on cells per submission. Well beyond any figure grid (a full
/// pipeline is a few thousand cells), comfortably inside `u32` — the
/// protocol's count fields can never truncate a grid the client accepted.
/// Larger corpora split into multiple submissions.
pub const MAX_GRID: usize = 1 << 16;

/// Finished-but-unwatched tickets retained before the oldest are dropped.
const MAX_RETAINED_TICKETS: usize = 256;

/// One cell of a remote submission.
#[derive(Clone, Debug)]
pub struct WireJob {
    /// The program as its assembly listing (`Program::disassemble`).
    pub listing: String,
    /// Full machine configuration.
    pub config: MachineConfig,
    /// Result-store key salt (see `exec::service::config_fingerprint`).
    pub salt: u64,
    /// Opaque machine-builder tag (the runtime sends its compiler mode).
    pub tag: u64,
}

impl WireJob {
    /// A wire job for `program` (rendered to its listing here).
    #[must_use]
    pub fn new(program: &Program, config: MachineConfig, salt: u64, tag: u64) -> WireJob {
        WireJob {
            listing: program.disassemble(),
            config,
            salt,
            tag,
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(io::Error),
    /// A frame failed to decode.
    Wire(WireError),
    /// The server rejected the request with a diagnostic.
    Server(String),
    /// The server violated the protocol (wrong frame kind/shape).
    Protocol(&'static str),
    /// The grid exceeds [`MAX_GRID`]; rejected before anything is sent.
    Oversized {
        /// How many cells the caller submitted.
        cells: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Wire(e) => write!(f, "malformed frame: {e}"),
            ServeError::Server(msg) => write!(f, "server error: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ServeError::Oversized { cells } => write!(
                f,
                "grid of {cells} cells exceeds the {MAX_GRID}-cell submission \
                 limit (split the corpus into multiple submissions)"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> ServeError {
        ServeError::Wire(e)
    }
}

fn write_frame(stream: &mut TcpStream, kind: u8, payload: &[u8]) -> io::Result<()> {
    let len = (payload.len() + 1) as u32;
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(payload);
    stream.write_all(&frame)
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> Result<Option<(u8, Vec<u8>)>, ServeError> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len);
    if len == 0 || len > MAX_FRAME {
        return Err(ServeError::Protocol("frame length out of range"));
    }
    // The kind byte is read separately so the (possibly multi-MB) payload
    // lands directly at offset 0 — no shift-by-one memmove afterwards.
    let mut kind = [0u8; 1];
    stream.read_exact(&mut kind)?;
    let mut payload = vec![0u8; len as usize - 1];
    stream.read_exact(&mut payload)?;
    Ok(Some((kind[0], payload)))
}

/// Builds the machine for one remote cell; `hbserve` maps the tag back to
/// a compiler mode and attaches mode-specific extras (object tables).
pub type Builder = dyn Fn(Program, MachineConfig, u64) -> Machine + Send + Sync;

/// Validates a tag before any cell executes; unknown tags reject the
/// whole submission with a diagnostic instead of a builder panic.
pub type TagCheck = dyn Fn(u64) -> bool + Send + Sync;

/// Store/server counters as reported over the wire by a `STATS` request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemoteServerStats {
    /// Result-store hits (cells answered without simulation).
    pub hits: u64,
    /// Result-store misses (cells executed).
    pub misses: u64,
    /// Store entries evicted.
    pub evicted: u64,
    /// Stored results currently resident.
    pub store_len: u64,
    /// Log records appended since the server opened its store.
    pub log_appended: u64,
    /// Log flushes.
    pub log_flushes: u64,
    /// Cells this shard owns under the cluster ring (0 when unsharded).
    pub owned_cells: u64,
    /// Cells served for other shards (re-routed failover traffic).
    pub foreign_cells: u64,
    /// This server's shard index (`--shard k/n`).
    pub shard_index: u64,
    /// The cluster's shard count; 0 means the server runs unsharded.
    pub shard_count: u64,
    /// Seconds since the server bound its listener. (This and the fields
    /// below are 0 when talking to a pre-telemetry server: they ride at
    /// the end of the `STATS` payload and old servers simply omit them.)
    pub uptime_s: u64,
    /// Tickets currently live and still executing.
    pub tickets_active: u64,
    /// Tickets whose grids finished executing (consumed or not).
    pub tickets_finished: u64,
    /// Finished-but-unwatched tickets dropped by the retention GC.
    pub tickets_gcd: u64,
    /// Cells accepted but not yet executed (queue depth).
    pub cells_in_flight: u64,
}

/// Progress of a ticketed submission, as reported by a `POLL` request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TicketStatus {
    /// Cells in the ticket's grid.
    pub total: u32,
    /// Cells whose outcomes are ready to stream.
    pub ready: u32,
    /// Whether every cell finished.
    pub finished: bool,
    /// Whether the executor died before finishing (a server-side panic);
    /// the ticket's partial results are still watchable up to `ready`.
    pub failed: bool,
}

/// Shard identity of a cluster member (`hbserve --shard k/n`): used to
/// classify submitted cells as owned vs foreign (re-routed) in the
/// server's counters. Foreign cells are **served, not rejected** — they
/// are exactly how clients fail over a dead shard's cells.
#[derive(Debug)]
struct ShardState {
    index: usize,
    ring: ShardRing,
    owned: AtomicU64,
    foreign: AtomicU64,
}

/// One ticketed submission's mutable state; results append in input order
/// as the executor drains chunks, so `results.len()` is the ready count.
/// For tickets submitted with trace context (`SUBMIT3`), `trace` holds the
/// client's context and `spans` buffers the server-side spans that the
/// draining `WATCH` ships back in a `SPANS` frame.
#[derive(Debug, Default)]
struct TicketState {
    results: Vec<RunOutcome>,
    total: usize,
    finished: bool,
    failed: bool,
    trace: Option<TraceCtx>,
    spans: Vec<SpanEvent>,
}

type TicketSlot = Arc<(Mutex<TicketState>, Condvar)>;

/// The server's ticket table: id allocation plus the live submissions.
#[derive(Debug, Default)]
struct Tickets {
    next: u64,
    live: HashMap<u64, TicketSlot>,
}

impl Tickets {
    fn create(&mut self, total: usize, trace: Option<TraceCtx>, m: &Metrics) -> (u64, TicketSlot) {
        self.gc_finished(m);
        self.next += 1;
        let id = self.next;
        let slot: TicketSlot = Arc::new((
            Mutex::new(TicketState {
                results: Vec::new(),
                total,
                finished: false,
                failed: false,
                trace,
                spans: Vec::new(),
            }),
            Condvar::new(),
        ));
        self.live.insert(id, Arc::clone(&slot));
        m.tickets_created.inc();
        (id, slot)
    }

    /// Tickets currently live and still executing.
    fn active(&self) -> usize {
        self.live
            .values()
            .filter(|slot| {
                let st = slot.0.lock().unwrap_or_else(PoisonError::into_inner);
                !st.finished && !st.failed
            })
            .count()
    }

    /// Drops the oldest finished-but-unwatched tickets past the retention
    /// bound, so a client that submits and never watches cannot pin
    /// results forever. Running tickets are never dropped.
    fn gc_finished(&mut self, m: &Metrics) {
        let mut done: Vec<u64> = self
            .live
            .iter()
            .filter(|(_, slot)| {
                let st = slot.0.lock().unwrap_or_else(PoisonError::into_inner);
                st.finished || st.failed
            })
            .map(|(&id, _)| id)
            .collect();
        if done.len() <= MAX_RETAINED_TICKETS {
            return;
        }
        done.sort_unstable();
        for id in &done[..done.len() - MAX_RETAINED_TICKETS] {
            self.live.remove(id);
            m.tickets_gcd.inc();
        }
    }
}

/// Per-server metric handles plus the server-local [`Registry`] they are
/// registered in. Each [`Server`] owns its own registry (test binaries run
/// several servers in one process; their counters must not alias) — the
/// `METRICS` verb and the `--metrics-addr` exposition render it together
/// with the process-global registry.
struct Metrics {
    registry: Registry,
    started: Instant,
    tickets_created: Counter,
    tickets_finished: Counter,
    tickets_gcd: Counter,
    cells_executed: Counter,
    cells_in_flight: Gauge,
    chunk_us: Histogram,
}

impl Metrics {
    fn new() -> Metrics {
        let registry = Registry::new();
        let started = Instant::now();
        registry.gauge_fn("hbserve_uptime_seconds", move || {
            started.elapsed().as_secs()
        });
        Metrics {
            tickets_created: registry.counter("hbserve_tickets_created"),
            tickets_finished: registry.counter("hbserve_tickets_finished"),
            tickets_gcd: registry.counter("hbserve_tickets_gcd"),
            cells_executed: registry.counter("hbserve_cells_executed"),
            cells_in_flight: registry.gauge("hbserve_cells_in_flight"),
            chunk_us: registry.histogram("hbserve_chunk_us"),
            registry,
            started,
        }
    }

    fn uptime_s(&self) -> u64 {
        self.started.elapsed().as_secs()
    }

    /// Renders the process-global registry followed by this server's own.
    fn render(&self) -> String {
        let mut text = hardbound_telemetry::global().render();
        text.push_str(&self.registry.render());
        text
    }
}

/// The `hbserve` TCP front end: owns the shared [`PersistentService`]
/// and serves until a `SHUTDOWN` request.
pub struct Server {
    listener: TcpListener,
    svc: Arc<Mutex<PersistentService>>,
    build: Arc<Builder>,
    tag_ok: Arc<TagCheck>,
    shutdown: Arc<AtomicBool>,
    tickets: Arc<Mutex<Tickets>>,
    shard: Option<Arc<ShardState>>,
    metrics: Arc<Metrics>,
    /// Requests currently being served (not idle connections) plus ticket
    /// executors still draining; `run` waits for this to reach zero after
    /// the accept loop stops, so a shutdown never cuts an in-flight
    /// submission or a queued ticket mid-execution.
    busy: Arc<AtomicUsize>,
}

/// Owns one increment of the busy count; decrements when the request or
/// ticket executor finishes (however it ends).
struct BusyGuard(Arc<AtomicUsize>);

impl BusyGuard {
    fn enter(busy: &Arc<AtomicUsize>) -> BusyGuard {
        busy.fetch_add(1, Ordering::SeqCst);
        BusyGuard(Arc::clone(busy))
    }
}

impl Drop for BusyGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port) around `svc`.
    /// `build` constructs the machine for a missing cell; `tag_ok`
    /// pre-validates job tags.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        svc: PersistentService,
        build: Arc<Builder>,
        tag_ok: Arc<TagCheck>,
    ) -> io::Result<Server> {
        let svc = Arc::new(Mutex::new(svc));
        let tickets = Arc::new(Mutex::new(Tickets::default()));
        let metrics = Arc::new(Metrics::new());
        // Computed gauges over the service and ticket table, so one scrape
        // sees queue depth and store state without extra locking APIs.
        {
            let t = Arc::clone(&tickets);
            metrics
                .registry
                .gauge_fn("hbserve_tickets_active", move || {
                    t.lock().unwrap_or_else(PoisonError::into_inner).active() as u64
                });
            let s = Arc::clone(&svc);
            for (name, read) in [
                ("hbserve_store_hits", 0usize),
                ("hbserve_store_misses", 1),
                ("hbserve_store_evicted", 2),
                ("hbserve_store_len", 3),
                ("hbserve_log_appended", 4),
                ("hbserve_log_flushes", 5),
            ] {
                let s = Arc::clone(&s);
                metrics.registry.gauge_fn(name, move || {
                    let stats = s.lock().unwrap_or_else(PoisonError::into_inner).stats();
                    let log = stats.log.unwrap_or_default();
                    match read {
                        0 => stats.service.store.hits,
                        1 => stats.service.store.misses,
                        2 => stats.service.store.evicted,
                        3 => stats.service.store_len as u64,
                        4 => log.appended,
                        _ => log.flushes,
                    }
                });
            }
        }
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            svc,
            build,
            tag_ok,
            shutdown: Arc::new(AtomicBool::new(false)),
            tickets,
            shard: None,
            metrics,
            busy: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// Declares this server shard `index` of a `count`-shard cluster
    /// (`hbserve --shard k/n`): submitted cells are classified as owned
    /// vs foreign in the `STATS` counters. Routing is advisory — foreign
    /// cells still execute, so client-side failover works.
    ///
    /// # Panics
    ///
    /// Panics when `index >= count`.
    pub fn set_shard(&mut self, index: usize, count: usize) {
        assert!(index < count, "shard index {index} out of range 0..{count}");
        let shard = Arc::new(ShardState {
            index,
            ring: ShardRing::new(count),
            owned: AtomicU64::new(0),
            foreign: AtomicU64::new(0),
        });
        let r = &self.metrics.registry;
        r.gauge_fn("hbserve_shard_index", {
            let s = Arc::clone(&shard);
            move || s.index as u64
        });
        r.gauge_fn("hbserve_shard_count", {
            let s = Arc::clone(&shard);
            move || s.ring.shards() as u64
        });
        r.gauge_fn("hbserve_owned_cells", {
            let s = Arc::clone(&shard);
            move || s.owned.load(Ordering::Relaxed)
        });
        r.gauge_fn("hbserve_foreign_cells", {
            let s = Arc::clone(&shard);
            move || s.foreign.load(Ordering::Relaxed)
        });
        self.shard = Some(shard);
    }

    /// A detached renderer for the Prometheus-style text exposition
    /// (process-global registry + this server's own): `hbserve` hands it
    /// to the `--metrics-addr` HTTP thread, which outlives the borrow of
    /// `self` that [`Server::run`] holds.
    #[must_use]
    pub fn metrics_renderer(&self) -> impl Fn() -> String + Send + Sync + 'static {
        let metrics = Arc::clone(&self.metrics);
        move || metrics.render()
    }

    /// The bound address (read the ephemeral port from here).
    ///
    /// # Errors
    ///
    /// Propagates the OS query error.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared handle to the service (checkpointing at exit, tests).
    #[must_use]
    pub fn service(&self) -> Arc<Mutex<PersistentService>> {
        Arc::clone(&self.svc)
    }

    /// Accepts and serves connections (one thread each) until a client
    /// sends `SHUTDOWN`, then waits for every in-flight connection *and
    /// queued ticket* to finish — a shutdown never cuts another client's
    /// submission mid-stream, and the caller can checkpoint safely after
    /// `run` returns.
    ///
    /// # Errors
    ///
    /// Propagates accept errors.
    pub fn run(&self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn?;
            let svc = Arc::clone(&self.svc);
            let build = Arc::clone(&self.build);
            let tag_ok = Arc::clone(&self.tag_ok);
            let shutdown = Arc::clone(&self.shutdown);
            let tickets = Arc::clone(&self.tickets);
            let shard = self.shard.as_ref().map(Arc::clone);
            let metrics = Arc::clone(&self.metrics);
            let wake = self.listener.local_addr();
            let busy = Arc::clone(&self.busy);
            std::thread::spawn(move || {
                let ctx = ConnCtx {
                    svc,
                    build,
                    tag_ok,
                    shutdown,
                    tickets,
                    shard,
                    metrics,
                    busy,
                    wake,
                };
                handle_conn(stream, &ctx);
            });
        }
        // Drain in-flight requests and ticket executors. Handlers
        // increment `busy` *before* re-checking the shutdown flag, so once
        // this loop reads zero after the flag is set, any later request
        // observes the flag and is rejected — no request can slip past the
        // drain. Idle connections (no request in flight) are simply
        // abandoned; their clients see EOF at a frame boundary.
        while self.busy.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(2));
        }
        Ok(())
    }
}

/// Everything one connection handler needs, bundled so ticket executors
/// can clone pieces into their own threads.
struct ConnCtx {
    svc: Arc<Mutex<PersistentService>>,
    build: Arc<Builder>,
    tag_ok: Arc<TagCheck>,
    shutdown: Arc<AtomicBool>,
    tickets: Arc<Mutex<Tickets>>,
    shard: Option<Arc<ShardState>>,
    metrics: Arc<Metrics>,
    busy: Arc<AtomicUsize>,
    wake: io::Result<std::net::SocketAddr>,
}

/// Serves one connection until EOF or shutdown.
fn handle_conn(mut stream: TcpStream, ctx: &ConnCtx) {
    let _ = stream.set_nodelay(true);
    loop {
        let (kind, payload) = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        // Mark the request in flight *before* re-checking the shutdown
        // flag: the drain loop in `Server::run` reads the counter after
        // setting the flag, so either it sees this request and waits, or
        // this check sees the flag and rejects — never both missed.
        let _busy = BusyGuard::enter(&ctx.busy);
        if ctx.shutdown.load(Ordering::SeqCst) && kind != REQ_SHUTDOWN {
            let mut w = Writer::new();
            w.put_str("server is shutting down");
            let _ = write_frame(&mut stream, RESP_ERR, &w.into_bytes());
            return;
        }
        let result = match kind {
            REQ_SUBMIT => serve_submission(&mut stream, ctx, &payload),
            REQ_SUBMIT2 => serve_submission2(&mut stream, ctx, &payload, None),
            REQ_SUBMIT3 => serve_submission3(&mut stream, ctx, &payload),
            REQ_WATCH => serve_watch(&mut stream, ctx, &payload),
            REQ_POLL => serve_poll(&mut stream, ctx, &payload),
            REQ_STATS => serve_stats(&mut stream, ctx),
            REQ_METRICS => serve_metrics(&mut stream, ctx),
            REQ_PROFILE => serve_profile(&mut stream),
            REQ_SHUTDOWN => {
                ctx.shutdown.store(true, Ordering::SeqCst);
                let _ = write_frame(&mut stream, RESP_DONE, &0u32.to_le_bytes());
                // The accept loop is blocked in `accept`; poke it so it
                // observes the flag and exits.
                if let Ok(addr) = ctx.wake {
                    let _ = TcpStream::connect(addr);
                }
                return;
            }
            _ => {
                let mut w = Writer::new();
                w.put_str("unknown request kind");
                write_frame(&mut stream, RESP_ERR, &w.into_bytes()).map_err(ServeError::from)
            }
        };
        if result.is_err() {
            return; // connection is broken; nothing left to report
        }
    }
}

fn reject(stream: &mut TcpStream, msg: &str) -> Result<(), ServeError> {
    let mut w = Writer::new();
    w.put_str(msg);
    write_frame(stream, RESP_ERR, &w.into_bytes())?;
    Ok(())
}

fn serve_stats(stream: &mut TcpStream, ctx: &ConnCtx) -> Result<(), ServeError> {
    let stats = ctx
        .svc
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .stats();
    let log = stats.log.unwrap_or_default();
    let mut w = Writer::new();
    w.put_u64(stats.service.store.hits);
    w.put_u64(stats.service.store.misses);
    w.put_u64(stats.service.store.evicted);
    w.put_u64(stats.service.store_len as u64);
    w.put_u64(log.appended);
    w.put_u64(log.flushes);
    match &ctx.shard {
        Some(shard) => {
            w.put_u64(shard.owned.load(Ordering::Relaxed));
            w.put_u64(shard.foreign.load(Ordering::Relaxed));
            w.put_u64(shard.index as u64);
            w.put_u64(shard.ring.shards() as u64);
        }
        None => {
            for _ in 0..4 {
                w.put_u64(0);
            }
        }
    }
    // Telemetry extension (appended so pre-telemetry clients, which stop
    // reading after the ten original counters, decode unchanged).
    let m = &ctx.metrics;
    w.put_u64(m.uptime_s());
    w.put_u64(
        ctx.tickets
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .active() as u64,
    );
    w.put_u64(m.tickets_finished.get());
    w.put_u64(m.tickets_gcd.get());
    w.put_u64(m.cells_in_flight.get());
    write_frame(stream, RESP_STATS, &w.into_bytes())?;
    Ok(())
}

/// Answers a `METRICS` request with the Prometheus-style text exposition
/// of the process-global registry plus this server's own.
fn serve_metrics(stream: &mut TcpStream, ctx: &ConnCtx) -> Result<(), ServeError> {
    let mut w = Writer::new();
    w.put_str(&ctx.metrics.render());
    write_frame(stream, RESP_METRICS, &w.into_bytes())?;
    Ok(())
}

/// Answers a `PROFILE` request with the process-global hot-spot profile
/// accumulator in its parseable text form. The snapshot is taken under
/// the accumulator's lock, so a mid-grid scrape is atomic with respect to
/// engine flushes: counts are a consistent prefix of the work done, never
/// a torn read.
fn serve_profile(stream: &mut TcpStream) -> Result<(), ServeError> {
    let mut w = Writer::new();
    w.put_str(&hardbound_telemetry::profile::global().snapshot().to_text());
    write_frame(stream, RESP_PROFILE, &w.into_bytes())?;
    Ok(())
}

/// Classifies each decoded cell as owned vs foreign under the cluster
/// ring (no-op for unsharded servers).
fn note_ownership(shard: &Option<Arc<ShardState>>, jobs: &[Job<u64>]) {
    let Some(shard) = shard else { return };
    let mut owned = 0;
    let mut foreign = 0;
    for job in jobs {
        let (pid, fp) = job.key();
        if shard.ring.owner_of_cell(pid.0, fp) == shard.index {
            owned += 1;
        } else {
            foreign += 1;
        }
    }
    shard.owned.fetch_add(owned, Ordering::Relaxed);
    shard.foreign.fetch_add(foreign, Ordering::Relaxed);
}

/// Decodes, validates and executes one protocol-v1 submission, streaming
/// results in chunk-sized `RESULTS` frames and a final `DONE` on the
/// submitting connection.
fn serve_submission(
    stream: &mut TcpStream,
    ctx: &ConnCtx,
    payload: &[u8],
) -> Result<(), ServeError> {
    let jobs = match decode_submission(payload, &ctx.tag_ok) {
        Ok(jobs) => jobs,
        Err(msg) => return reject(stream, &msg),
    };
    note_ownership(&ctx.shard, &jobs);
    ctx.metrics.cells_in_flight.add(jobs.len() as u64);
    let mut sent = 0u32;
    for chunk in jobs.chunks(CHUNK) {
        let t0 = Instant::now();
        let outs = {
            let mut svc = ctx.svc.lock().unwrap_or_else(PoisonError::into_inner);
            svc.run_batch(chunk, |program, config, &tag| {
                (ctx.build)(program, config, tag)
            })
        };
        ctx.metrics.chunk_us.record_duration(t0.elapsed());
        ctx.metrics.cells_executed.add(outs.len() as u64);
        ctx.metrics.cells_in_flight.sub(chunk.len() as u64);
        let mut w = Writer::new();
        w.put_u32(sent);
        w.put_u32(outs.len() as u32);
        for out in &outs {
            encode_outcome(&mut w, out);
        }
        write_frame(stream, RESP_RESULTS, &w.into_bytes())?;
        sent += outs.len() as u32;
    }
    write_frame(stream, RESP_DONE, &sent.to_le_bytes())?;
    Ok(())
}

/// Decodes and validates a protocol-v2 submission, enqueues it as a
/// ticket on the work queue, and answers `TICKET` immediately; a detached
/// executor drains the grid into the ticket's result buffer.
fn serve_submission2(
    stream: &mut TcpStream,
    ctx: &ConnCtx,
    payload: &[u8],
    trace_ctx: Option<TraceCtx>,
) -> Result<(), ServeError> {
    let jobs = match decode_submission2(payload, &ctx.tag_ok) {
        Ok(jobs) => jobs,
        Err(msg) => return reject(stream, &msg),
    };
    note_ownership(&ctx.shard, &jobs);
    let total = jobs.len();
    let (id, slot) = ctx
        .tickets
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .create(total, trace_ctx, &ctx.metrics);
    ctx.metrics.cells_in_flight.add(total as u64);
    // The executor counts as busy from *before* this handler's own guard
    // drops, so a shutdown drain can never miss a queued ticket.
    let exec_busy = BusyGuard::enter(&ctx.busy);
    let svc = Arc::clone(&ctx.svc);
    let build = Arc::clone(&ctx.build);
    let metrics = Arc::clone(&ctx.metrics);
    let shard_index = ctx.shard.as_ref().map(|s| s.index as u64);
    std::thread::spawn(move || {
        let _busy = exec_busy;
        run_ticket(&slot, id, &jobs, &svc, &*build, &metrics, shard_index);
    });
    let mut w = Writer::new();
    w.put_u64(id);
    w.put_u32(total as u32);
    write_frame(stream, RESP_TICKET, &w.into_bytes())?;
    Ok(())
}

/// `SUBMIT3` = trace context (trace id, parent span id) + a `SUBMIT2`
/// payload: the server runs the ticket's spans under the *client's* trace
/// so the merged JSONL reads as one tree.
fn serve_submission3(
    stream: &mut TcpStream,
    ctx: &ConnCtx,
    payload: &[u8],
) -> Result<(), ServeError> {
    let mut r = Reader::new(payload);
    let (trace_id, parent) = match (r.get_u64(), r.get_u64()) {
        (Ok(t), Ok(p)) if t != 0 => (t, p),
        _ => return reject(stream, "malformed SUBMIT3 trace context"),
    };
    let trace_ctx = TraceCtx {
        trace: TraceId(trace_id),
        parent: SpanId(parent),
    };
    serve_submission2(stream, ctx, &payload[16..], Some(trace_ctx))
}

/// Marks the ticket failed if the executor dies before finishing (builder
/// panic), so watchers report an error instead of waiting forever.
struct FailGuard(TicketSlot);

impl Drop for FailGuard {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.0;
        let mut st = lock.lock().unwrap_or_else(PoisonError::into_inner);
        if !st.finished {
            st.failed = true;
            cvar.notify_all();
        }
    }
}

/// The ticket executor: drains the grid in chunks (releasing the service
/// lock between chunks, exactly like the v1 path) and appends outcomes to
/// the ticket's buffer in input order. For traced tickets it stamps one
/// `ticket_exec` span covering the whole drain plus a `chunk` span per
/// service-lock acquisition, all keyed by ticket id — buffered on the
/// ticket (shipped back with `WATCH`) and mirrored to the server's own
/// `HB_TRACE` sink, if any.
fn run_ticket(
    slot: &TicketSlot,
    id: u64,
    jobs: &[Job<u64>],
    svc: &Mutex<PersistentService>,
    build: &Builder,
    metrics: &Metrics,
    shard_index: Option<u64>,
) {
    let guard = FailGuard(Arc::clone(slot));
    let trace_ctx = slot.0.lock().unwrap_or_else(PoisonError::into_inner).trace;
    let exec_timer = trace_ctx.map(|c| SpanTimer::start(c.trace, c.parent, "ticket_exec"));
    let exec_span = exec_timer.as_ref().map(SpanTimer::span);
    for (chunk_index, chunk) in jobs.chunks(CHUNK).enumerate() {
        let chunk_timer = trace_ctx
            .zip(exec_span)
            .map(|(c, parent)| SpanTimer::start(c.trace, parent, "chunk"));
        let t0 = Instant::now();
        let outs = {
            let mut svc = svc.lock().unwrap_or_else(PoisonError::into_inner);
            svc.run_batch(chunk, |program, config, &tag| build(program, config, tag))
        };
        metrics.chunk_us.record_duration(t0.elapsed());
        metrics.cells_executed.add(outs.len() as u64);
        metrics.cells_in_flight.sub(chunk.len() as u64);
        let (lock, cvar) = &**slot;
        let mut st = lock.lock().unwrap_or_else(PoisonError::into_inner);
        st.results.extend(outs);
        if let Some(timer) = chunk_timer {
            let ev = timer.finish(vec![
                ("ticket".into(), id.into()),
                ("chunk".into(), (chunk_index as u64).into()),
                ("cells".into(), (chunk.len() as u64).into()),
            ]);
            trace::emit(&ev);
            st.spans.push(ev);
        }
        cvar.notify_all();
    }
    metrics.tickets_finished.inc();
    let (lock, cvar) = &**slot;
    let mut st = lock.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(timer) = exec_timer {
        let mut fields = vec![
            ("ticket".into(), id.into()),
            ("cells".into(), (jobs.len() as u64).into()),
        ];
        if let Some(index) = shard_index {
            fields.push(("shard_index".into(), index.into()));
        }
        let ev = timer.finish(fields);
        trace::emit(&ev);
        st.spans.push(ev);
    }
    st.finished = true;
    cvar.notify_all();
    drop(st);
    drop(guard); // disarmed: finished is set
}

/// Streams a ticket's results (`RESULTS` frames as chunks become ready,
/// then `DONE`) and consumes the ticket. Watching partway through a
/// running execution blocks between chunks; watching a finished ticket
/// streams everything at once — including from a *different* connection
/// than the one that submitted.
fn serve_watch(stream: &mut TcpStream, ctx: &ConnCtx, payload: &[u8]) -> Result<(), ServeError> {
    let mut r = Reader::new(payload);
    let id = match r.get_u64() {
        Ok(id) if r.is_exhausted() => id,
        _ => return reject(stream, "malformed WATCH payload"),
    };
    let slot = {
        let tickets = ctx.tickets.lock().unwrap_or_else(PoisonError::into_inner);
        tickets.live.get(&id).cloned()
    };
    let Some(slot) = slot else {
        return reject(stream, &format!("unknown ticket {id}"));
    };
    let mut sent = 0usize;
    loop {
        // Wait for news, then snapshot the fresh slice outside the lock so
        // slow sockets never stall the executor.
        let (fresh, finished, failed, total) = {
            let (lock, cvar) = &*slot;
            let mut st = lock.lock().unwrap_or_else(PoisonError::into_inner);
            while st.results.len() == sent && !st.finished && !st.failed {
                let (next, _) = cvar
                    .wait_timeout(st, Duration::from_millis(100))
                    .unwrap_or_else(PoisonError::into_inner);
                st = next;
            }
            (
                st.results[sent..].to_vec(),
                st.finished,
                st.failed,
                st.total,
            )
        };
        if !fresh.is_empty() {
            let mut w = Writer::new();
            w.put_u32(sent as u32);
            w.put_u32(fresh.len() as u32);
            for out in &fresh {
                encode_outcome(&mut w, out);
            }
            write_frame(stream, RESP_RESULTS, &w.into_bytes())?;
            sent += fresh.len();
        }
        if failed {
            // Partial results (if any) were streamed above; report the
            // failure and drop the ticket.
            remove_ticket(ctx, id);
            return reject(stream, "ticket execution failed on the server");
        }
        if finished && sent == total {
            // Ship the server-side spans ahead of DONE — only for tickets
            // that were submitted with trace context, so a pre-telemetry
            // client (which can never have created one) never sees the
            // SPANS frame kind.
            let spans = {
                let st = slot.0.lock().unwrap_or_else(PoisonError::into_inner);
                if st.trace.is_some() {
                    st.spans.clone()
                } else {
                    Vec::new()
                }
            };
            if !spans.is_empty() {
                let mut w = Writer::new();
                w.put_u32(spans.len() as u32);
                for ev in &spans {
                    encode_span(&mut w, ev);
                }
                write_frame(stream, RESP_SPANS, &w.into_bytes())?;
            }
            write_frame(stream, RESP_DONE, &(sent as u32).to_le_bytes())?;
            remove_ticket(ctx, id);
            return Ok(());
        }
    }
}

fn remove_ticket(ctx: &ConnCtx, id: u64) {
    ctx.tickets
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .live
        .remove(&id);
}

/// Answers one `TICKET_STATUS` frame for a `POLL` (non-consuming).
fn serve_poll(stream: &mut TcpStream, ctx: &ConnCtx, payload: &[u8]) -> Result<(), ServeError> {
    let mut r = Reader::new(payload);
    let id = match r.get_u64() {
        Ok(id) if r.is_exhausted() => id,
        _ => return reject(stream, "malformed POLL payload"),
    };
    let slot = {
        let tickets = ctx.tickets.lock().unwrap_or_else(PoisonError::into_inner);
        tickets.live.get(&id).cloned()
    };
    let Some(slot) = slot else {
        return reject(stream, &format!("unknown ticket {id}"));
    };
    let (total, ready, finished, failed) = {
        let st = slot.0.lock().unwrap_or_else(PoisonError::into_inner);
        (st.total, st.results.len(), st.finished, st.failed)
    };
    let mut w = Writer::new();
    w.put_u32(total as u32);
    w.put_u32(ready as u32);
    w.put_u8(u8::from(finished));
    w.put_u8(u8::from(failed));
    write_frame(stream, RESP_TICKET_STATUS, &w.into_bytes())?;
    Ok(())
}

/// Validates one decoded job (program + config + tag) before anything
/// executes, so rejections come back as `ERR` frames, never worker panics.
fn validate_job(
    i: u32,
    program: &Program,
    config: &MachineConfig,
    tag: u64,
    tag_ok: &Arc<TagCheck>,
) -> Result<(), String> {
    program
        .validate()
        .map_err(|e| format!("job {i}: invalid program: {e}"))?;
    // Reject-before-execute covers the config too: geometry the hierarchy
    // constructors would `assert!` on must come back as an ERR frame, not
    // a worker panic under the service lock.
    config
        .hierarchy
        .validate()
        .map_err(|e| format!("job {i}: invalid hierarchy config: {e}"))?;
    if !tag_ok(tag) {
        return Err(format!("job {i}: unknown machine-builder tag {tag}"));
    }
    Ok(())
}

/// Decodes a v1 `SUBMIT` payload into service jobs, validating programs
/// and tags up front (reject-before-execute).
fn decode_submission(payload: &[u8], tag_ok: &Arc<TagCheck>) -> Result<Vec<Job<u64>>, String> {
    let mut r = Reader::new(payload);
    let count = r.get_u32().map_err(|e| e.to_string())?;
    if count as usize > MAX_GRID {
        return Err(format!(
            "grid of {count} cells exceeds the {MAX_GRID}-cell limit"
        ));
    }
    let mut jobs = Vec::with_capacity(count.min(4096) as usize);
    for i in 0..count {
        let listing = r.get_str().map_err(|e| format!("job {i}: {e}"))?;
        let program = hardbound_isa::parse_program(listing)
            .map_err(|e| format!("job {i}: unparseable program listing: {e}"))?;
        let config = decode_config(&mut r).map_err(|e| format!("job {i}: {e}"))?;
        let salt = r.get_u64().map_err(|e| format!("job {i}: {e}"))?;
        let tag = r.get_u64().map_err(|e| format!("job {i}: {e}"))?;
        validate_job(i, &program, &config, tag, tag_ok)?;
        jobs.push(Job {
            program,
            config,
            salt,
            tag,
        });
    }
    if !r.is_exhausted() {
        return Err("trailing bytes after the last job".to_owned());
    }
    Ok(jobs)
}

/// Decodes a v2 `SUBMIT2` payload: the deduplicated listing table parses
/// (and validates) once per distinct program, then cells reference table
/// entries by index.
fn decode_submission2(payload: &[u8], tag_ok: &Arc<TagCheck>) -> Result<Vec<Job<u64>>, String> {
    let mut r = Reader::new(payload);
    let listings = r.get_u32().map_err(|e| e.to_string())?;
    if listings as usize > MAX_GRID {
        return Err(format!(
            "listing table of {listings} entries exceeds the {MAX_GRID}-entry limit"
        ));
    }
    let mut programs = Vec::with_capacity(listings.min(4096) as usize);
    for i in 0..listings {
        let listing = r.get_str().map_err(|e| format!("listing {i}: {e}"))?;
        let program = hardbound_isa::parse_program(listing)
            .map_err(|e| format!("listing {i}: unparseable program listing: {e}"))?;
        program
            .validate()
            .map_err(|e| format!("listing {i}: invalid program: {e}"))?;
        programs.push(program);
    }
    let count = r.get_u32().map_err(|e| e.to_string())?;
    if count as usize > MAX_GRID {
        return Err(format!(
            "grid of {count} cells exceeds the {MAX_GRID}-cell limit"
        ));
    }
    let mut jobs = Vec::with_capacity(count.min(4096) as usize);
    for i in 0..count {
        let idx = r.get_u32().map_err(|e| format!("job {i}: {e}"))?;
        let program = programs
            .get(idx as usize)
            .ok_or_else(|| format!("job {i}: listing index {idx} out of range 0..{listings}"))?
            .clone();
        let config = decode_config(&mut r).map_err(|e| format!("job {i}: {e}"))?;
        let salt = r.get_u64().map_err(|e| format!("job {i}: {e}"))?;
        let tag = r.get_u64().map_err(|e| format!("job {i}: {e}"))?;
        // The program was validated with the table; only config and tag
        // remain per cell.
        config
            .hierarchy
            .validate()
            .map_err(|e| format!("job {i}: invalid hierarchy config: {e}"))?;
        if !tag_ok(tag) {
            return Err(format!("job {i}: unknown machine-builder tag {tag}"));
        }
        jobs.push(Job {
            program,
            config,
            salt,
            tag,
        });
    }
    if !r.is_exhausted() {
        return Err("trailing bytes after the last job".to_owned());
    }
    Ok(jobs)
}

/// Encodes a v2 `SUBMIT2` payload: identical listings collapse into one
/// table entry referenced by index (a mode×encoding sweep over one
/// program ships the listing once, not once per cell).
#[must_use]
pub fn encode_submission2(jobs: &[WireJob]) -> Vec<u8> {
    let mut table: Vec<&str> = Vec::new();
    let mut index: HashMap<&str, u32> = HashMap::new();
    for job in jobs {
        index.entry(job.listing.as_str()).or_insert_with(|| {
            table.push(&job.listing);
            (table.len() - 1) as u32
        });
    }
    let mut w = Writer::new();
    w.put_u32(table.len() as u32);
    for listing in &table {
        w.put_str(listing);
    }
    w.put_u32(jobs.len() as u32);
    for job in jobs {
        w.put_u32(index[job.listing.as_str()]);
        encode_config(&mut w, &job.config);
        w.put_u64(job.salt);
        w.put_u64(job.tag);
    }
    w.into_bytes()
}

/// Fills `results` from one `RESULTS` payload, rejecting out-of-range
/// ranges and re-delivered indices (a second delivery for a filled slot is
/// a protocol violation, not a silent overwrite).
fn fill_results(results: &mut [Option<RunOutcome>], payload: &[u8]) -> Result<(), ServeError> {
    let mut r = Reader::new(payload);
    let start = r.get_u32()? as usize;
    let count = r.get_u32()? as usize;
    let end = start
        .checked_add(count)
        .filter(|&end| end <= results.len())
        .ok_or(ServeError::Protocol("result indices out of range"))?;
    for slot in &mut results[start..end] {
        if slot.is_some() {
            return Err(ServeError::Protocol("duplicate result delivery"));
        }
        *slot = Some(decode_outcome(&mut r)?);
    }
    Ok(())
}

/// A client connection to an `hbserve` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (the `HB_SERVE_ADDR` value).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Submits `jobs` over the v1 synchronous flow and collects the
    /// streamed outcomes, in input order.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on oversized grids (rejected before anything is
    /// sent), socket failures, malformed frames, or a server rejection.
    pub fn run_jobs(&mut self, jobs: &[WireJob]) -> Result<Vec<RunOutcome>, ServeError> {
        if jobs.len() > MAX_GRID {
            return Err(ServeError::Oversized { cells: jobs.len() });
        }
        let mut w = Writer::new();
        w.put_u32(jobs.len() as u32);
        for job in jobs {
            w.put_str(&job.listing);
            encode_config(&mut w, &job.config);
            w.put_u64(job.salt);
            w.put_u64(job.tag);
        }
        write_frame(&mut self.stream, REQ_SUBMIT, &w.into_bytes())?;

        let mut results: Vec<Option<RunOutcome>> = vec![None; jobs.len()];
        self.collect(&mut results, &mut Vec::new())?;
        results
            .into_iter()
            .collect::<Option<Vec<RunOutcome>>>()
            .ok_or(ServeError::Protocol("server omitted results"))
    }

    /// Submits `jobs` over the v2 ticket flow (deduplicated listing
    /// table) and returns the ticket id; collect with [`Client::watch`] /
    /// [`Client::watch_into`] or check progress with [`Client::poll`] —
    /// from this connection or any later one.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on oversized grids, socket failures, malformed
    /// frames, or a server rejection.
    pub fn submit(&mut self, jobs: &[WireJob]) -> Result<u64, ServeError> {
        self.submit_traced(jobs, None).map(|(ticket, _)| ticket)
    }

    /// [`Client::submit`] carrying trace context: the server stamps its
    /// spans under `ctx.trace` with `ctx.parent` as their root's parent
    /// and returns them with the draining `WATCH`. Returns the ticket and
    /// whether the server accepted the context — a pre-telemetry server
    /// rejects the `SUBMIT3` frame kind, and this method then falls back
    /// to a plain `SUBMIT2` on the same connection (`false`: results are
    /// identical, server-side spans are simply absent).
    ///
    /// # Errors
    ///
    /// [`ServeError`] on oversized grids, socket failures, malformed
    /// frames, or a server rejection.
    pub fn submit_traced(
        &mut self,
        jobs: &[WireJob],
        ctx: Option<TraceCtx>,
    ) -> Result<(u64, bool), ServeError> {
        if jobs.len() > MAX_GRID {
            return Err(ServeError::Oversized { cells: jobs.len() });
        }
        let encoded = encode_submission2(jobs);
        if let Some(ctx) = ctx {
            let mut w = Writer::new();
            w.put_u64(ctx.trace.0);
            w.put_u64(ctx.parent.0);
            let mut payload = w.into_bytes();
            payload.extend_from_slice(&encoded);
            write_frame(&mut self.stream, REQ_SUBMIT3, &payload)?;
            match self.read_ticket(jobs.len()) {
                Ok(ticket) => return Ok((ticket, true)),
                // An old server leaves the connection open after rejecting
                // an unknown frame kind; retry without trace context.
                Err(ServeError::Server(msg)) if msg.contains("unknown request kind") => {}
                Err(e) => return Err(e),
            }
        }
        write_frame(&mut self.stream, REQ_SUBMIT2, &encoded)?;
        self.read_ticket(jobs.len()).map(|ticket| (ticket, false))
    }

    fn read_ticket(&mut self, cells: usize) -> Result<u64, ServeError> {
        let (kind, payload) =
            read_frame(&mut self.stream)?.ok_or(ServeError::Protocol("server closed"))?;
        match kind {
            RESP_TICKET => {
                let mut r = Reader::new(&payload);
                let ticket = r.get_u64()?;
                let count = r.get_u32()? as usize;
                if count != cells {
                    return Err(ServeError::Protocol("ticket covers the wrong cell count"));
                }
                Ok(ticket)
            }
            RESP_ERR => {
                let mut r = Reader::new(&payload);
                Err(ServeError::Server(r.get_str()?.to_owned()))
            }
            _ => Err(ServeError::Protocol("expected a TICKET response")),
        }
    }

    /// Streams ticket `ticket`'s outcomes into `results` (one slot per
    /// submitted cell, `None` = not yet delivered). Already-filled slots
    /// are kept; a re-delivery for one of them is a protocol error. On a
    /// mid-stream failure the slots filled so far remain — callers
    /// reconnect and resubmit only the missing cells.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on socket failures, malformed frames, or a server
    /// rejection (unknown ticket, failed execution).
    pub fn watch_into(
        &mut self,
        ticket: u64,
        results: &mut [Option<RunOutcome>],
    ) -> Result<(), ServeError> {
        let mut spans = Vec::new();
        self.watch_into_traced(ticket, results, &mut spans)
    }

    /// [`Client::watch_into`] that also collects the server-side trace
    /// spans of a ticket submitted with [`Client::submit_traced`] (the
    /// `SPANS` frame preceding `DONE`). For untraced tickets `spans`
    /// stays empty.
    ///
    /// # Errors
    ///
    /// As for [`Client::watch_into`].
    pub fn watch_into_traced(
        &mut self,
        ticket: u64,
        results: &mut [Option<RunOutcome>],
        spans: &mut Vec<SpanEvent>,
    ) -> Result<(), ServeError> {
        let mut w = Writer::new();
        w.put_u64(ticket);
        write_frame(&mut self.stream, REQ_WATCH, &w.into_bytes())?;
        self.collect(results, spans)
    }

    /// [`Client::submit`] + [`Client::watch_into`]: the v2 analogue of
    /// [`Client::run_jobs`].
    ///
    /// # Errors
    ///
    /// [`ServeError`] as for the two halves.
    pub fn run_jobs_v2(&mut self, jobs: &[WireJob]) -> Result<Vec<RunOutcome>, ServeError> {
        let ticket = self.submit(jobs)?;
        let mut results: Vec<Option<RunOutcome>> = vec![None; jobs.len()];
        self.watch_into(ticket, &mut results)?;
        results
            .into_iter()
            .collect::<Option<Vec<RunOutcome>>>()
            .ok_or(ServeError::Protocol("server omitted results"))
    }

    /// Consumes `RESULTS` (and `SPANS`) frames into `results`/`spans`
    /// until `DONE`.
    fn collect(
        &mut self,
        results: &mut [Option<RunOutcome>],
        spans: &mut Vec<SpanEvent>,
    ) -> Result<(), ServeError> {
        loop {
            let (kind, payload) = read_frame(&mut self.stream)?
                .ok_or(ServeError::Protocol("server closed mid-submission"))?;
            match kind {
                RESP_RESULTS => fill_results(results, &payload)?,
                RESP_SPANS => {
                    let mut r = Reader::new(&payload);
                    let count = r.get_u32()?;
                    for _ in 0..count {
                        spans.push(decode_span(&mut r)?);
                    }
                }
                RESP_DONE => return Ok(()),
                RESP_ERR => {
                    let mut r = Reader::new(&payload);
                    return Err(ServeError::Server(r.get_str()?.to_owned()));
                }
                _ => return Err(ServeError::Protocol("unexpected frame kind")),
            }
        }
    }

    /// Fetches a ticket's progress without consuming it.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on socket failures, malformed frames, or an unknown
    /// ticket.
    pub fn poll(&mut self, ticket: u64) -> Result<TicketStatus, ServeError> {
        let mut w = Writer::new();
        w.put_u64(ticket);
        write_frame(&mut self.stream, REQ_POLL, &w.into_bytes())?;
        let (kind, payload) =
            read_frame(&mut self.stream)?.ok_or(ServeError::Protocol("server closed"))?;
        match kind {
            RESP_TICKET_STATUS => {
                let mut r = Reader::new(&payload);
                Ok(TicketStatus {
                    total: r.get_u32()?,
                    ready: r.get_u32()?,
                    finished: r.get_u8()? != 0,
                    failed: r.get_u8()? != 0,
                })
            }
            RESP_ERR => {
                let mut r = Reader::new(&payload);
                Err(ServeError::Server(r.get_str()?.to_owned()))
            }
            _ => Err(ServeError::Protocol("expected a TICKET_STATUS response")),
        }
    }

    /// Fetches the server's store/log counters.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on socket failures or malformed frames.
    pub fn stats(&mut self) -> Result<RemoteServerStats, ServeError> {
        write_frame(&mut self.stream, REQ_STATS, &[])?;
        let (kind, payload) =
            read_frame(&mut self.stream)?.ok_or(ServeError::Protocol("server closed"))?;
        if kind != RESP_STATS {
            return Err(ServeError::Protocol("expected a STATS response"));
        }
        let mut r = Reader::new(&payload);
        let mut stats = RemoteServerStats {
            hits: r.get_u64()?,
            misses: r.get_u64()?,
            evicted: r.get_u64()?,
            store_len: r.get_u64()?,
            log_appended: r.get_u64()?,
            log_flushes: r.get_u64()?,
            owned_cells: r.get_u64()?,
            foreign_cells: r.get_u64()?,
            shard_index: r.get_u64()?,
            shard_count: r.get_u64()?,
            ..RemoteServerStats::default()
        };
        // The telemetry extension rides at the tail; a pre-telemetry
        // server's payload simply ends here.
        if r.remaining() >= 40 {
            stats.uptime_s = r.get_u64()?;
            stats.tickets_active = r.get_u64()?;
            stats.tickets_finished = r.get_u64()?;
            stats.tickets_gcd = r.get_u64()?;
            stats.cells_in_flight = r.get_u64()?;
        }
        Ok(stats)
    }

    /// Fetches the server's metrics as Prometheus-style text (the same
    /// exposition `hbserve --metrics-addr` serves over HTTP).
    ///
    /// # Errors
    ///
    /// [`ServeError`] on socket failures, malformed frames, or a server
    /// rejection (a pre-telemetry server answers `ERR "unknown request
    /// kind"`).
    pub fn metrics(&mut self) -> Result<String, ServeError> {
        write_frame(&mut self.stream, REQ_METRICS, &[])?;
        let (kind, payload) =
            read_frame(&mut self.stream)?.ok_or(ServeError::Protocol("server closed"))?;
        match kind {
            RESP_METRICS => {
                let mut r = Reader::new(&payload);
                Ok(r.get_str()?.to_owned())
            }
            RESP_ERR => {
                let mut r = Reader::new(&payload);
                Err(ServeError::Server(r.get_str()?.to_owned()))
            }
            _ => Err(ServeError::Protocol("expected a METRICS response")),
        }
    }

    /// Fetches the server's accumulated hot-spot profile (non-empty only
    /// when the server executes with `HB_PROF=1`).
    ///
    /// # Errors
    ///
    /// [`ServeError`] on socket failures, malformed frames, an unparseable
    /// profile, or a server rejection (a pre-profile server answers `ERR
    /// "unknown request kind"` — callers merging a cluster treat that
    /// shard as an empty profile).
    pub fn profile(&mut self) -> Result<hardbound_telemetry::Profile, ServeError> {
        write_frame(&mut self.stream, REQ_PROFILE, &[])?;
        let (kind, payload) =
            read_frame(&mut self.stream)?.ok_or(ServeError::Protocol("server closed"))?;
        match kind {
            RESP_PROFILE => {
                let mut r = Reader::new(&payload);
                hardbound_telemetry::Profile::from_text(r.get_str()?).map_err(ServeError::Server)
            }
            RESP_ERR => {
                let mut r = Reader::new(&payload);
                Err(ServeError::Server(r.get_str()?.to_owned()))
            }
            _ => Err(ServeError::Protocol("expected a PROFILE response")),
        }
    }

    /// Asks the server to shut down after in-flight connections finish.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on socket failures.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        write_frame(&mut self.stream, REQ_SHUTDOWN, &[])?;
        let (kind, _) =
            read_frame(&mut self.stream)?.ok_or(ServeError::Protocol("server closed"))?;
        if kind != RESP_DONE {
            return Err(ServeError::Protocol("expected a DONE response"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_isa::{CmpOp, FunctionBuilder, Reg};

    fn counting_program(limit: i32) -> Program {
        let mut f = FunctionBuilder::new("main", 0);
        f.li(Reg::A0, 0);
        let head = f.bind_label();
        f.addi(Reg::A0, Reg::A0, 1);
        let done = f.new_label();
        f.branch(CmpOp::Ge, Reg::A0, limit, done);
        f.jump(head);
        f.bind(done);
        f.sys(hardbound_isa::SysCall::PrintInt);
        f.li(Reg::A0, 0);
        f.halt();
        Program::with_entry(vec![f.finish()])
    }

    fn spawn_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        spawn_server_sharded(None)
    }

    fn spawn_server_sharded(
        shard: Option<(usize, usize)>,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let svc = PersistentService::new(2);
        let build: Arc<Builder> = Arc::new(|p, cfg, _tag| Machine::new(p, cfg));
        let tag_ok: Arc<TagCheck> = Arc::new(|tag| tag < 5);
        let mut server = Server::bind("127.0.0.1:0", svc, build, tag_ok).unwrap();
        if let Some((index, count)) = shard {
            server.set_shard(index, count);
        }
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    fn expected_outcomes(jobs: &[WireJob]) -> Vec<RunOutcome> {
        jobs.iter()
            .map(|j| {
                let p = hardbound_isa::parse_program(&j.listing).unwrap();
                hardbound_exec::Engine::new(Machine::new(p, j.config.clone())).run()
            })
            .collect()
    }

    #[test]
    fn submit_streams_byte_identical_results_and_replays_warm() {
        let (addr, handle) = spawn_server();
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        let jobs: Vec<WireJob> =
            (0..67) // > 2 chunks
                .map(|k| WireJob::new(&counting_program(5 + k), cfg.clone(), 0, 0))
                .collect();
        let expected = expected_outcomes(&jobs);

        let mut client = Client::connect(addr).unwrap();
        let cold = client.run_jobs(&jobs).unwrap();
        assert_eq!(cold, expected, "remote execution must be byte-identical");
        let warm = client.run_jobs(&jobs).unwrap();
        assert_eq!(warm, expected, "warm replay must be byte-identical");
        let stats = client.stats().unwrap();
        assert_eq!(stats.misses, 67, "cold pass executed every cell");
        assert_eq!(stats.hits, 67, "warm pass replayed every cell");

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn ticket_flow_matches_v1_and_dedups_listings() {
        let (addr, handle) = spawn_server();
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        // 40 cells over 2 distinct programs: the v2 payload carries 2
        // listings, the v1 payload 40 copies.
        let jobs: Vec<WireJob> = (0..40)
            .map(|k| WireJob::new(&counting_program(5 + (k % 2)), cfg.clone(), k as u64, 0))
            .collect();
        let v2 = encode_submission2(&jobs);
        let per_cell_overhead = 4 + 8 + 8 + 256; // index + salt + tag + config upper bound
        assert!(
            v2.len() < 2 * jobs[0].listing.len() + 40 * per_cell_overhead,
            "the listing table must be deduplicated: {} bytes",
            v2.len()
        );

        let expected = expected_outcomes(&jobs);
        let mut client = Client::connect(addr).unwrap();
        let out = client.run_jobs_v2(&jobs).unwrap();
        assert_eq!(out, expected, "ticketed execution must be byte-identical");

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn tickets_survive_the_submitting_connection() {
        let (addr, handle) = spawn_server();
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        let jobs: Vec<WireJob> = (0..37)
            .map(|k| WireJob::new(&counting_program(5 + k), cfg.clone(), 0, 0))
            .collect();
        let expected = expected_outcomes(&jobs);

        // Submit on one connection, drop it, collect on another: the
        // ticket's results must not die with the socket.
        let ticket = {
            let mut submitter = Client::connect(addr).unwrap();
            submitter.submit(&jobs).unwrap()
        };
        let mut collector = Client::connect(addr).unwrap();
        // Poll until finished (never consumes), then watch.
        let status = loop {
            let st = collector.poll(ticket).unwrap();
            assert_eq!(st.total, 37);
            assert!(!st.failed);
            if st.finished {
                break st;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        assert_eq!(status.ready, 37, "finished tickets hold every outcome");
        let mut results: Vec<Option<RunOutcome>> = vec![None; jobs.len()];
        collector.watch_into(ticket, &mut results).unwrap();
        let results: Vec<RunOutcome> = results.into_iter().map(Option::unwrap).collect();
        assert_eq!(results, expected);

        // The watch consumed the ticket.
        match collector.poll(ticket).unwrap_err() {
            ServeError::Server(msg) => assert!(msg.contains("unknown ticket"), "{msg}"),
            other => panic!("expected unknown-ticket, got {other}"),
        }

        collector.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn bad_submissions_are_rejected_without_executing() {
        let (addr, handle) = spawn_server();
        let cfg = MachineConfig::default();
        let mut client = Client::connect(addr).unwrap();

        let mut bad_tag = vec![WireJob::new(&counting_program(3), cfg.clone(), 0, 99)];
        match client.run_jobs(&bad_tag).unwrap_err() {
            ServeError::Server(msg) => assert!(msg.contains("tag 99"), "{msg}"),
            other => panic!("expected a server rejection, got {other}"),
        }
        // The v2 path validates identically (rejected before a ticket is
        // ever allocated).
        match client.submit(&bad_tag).unwrap_err() {
            ServeError::Server(msg) => assert!(msg.contains("tag 99"), "{msg}"),
            other => panic!("expected a server rejection, got {other}"),
        }
        bad_tag[0].tag = 0;
        bad_tag[0].listing = "frobnicate a0\n".to_owned();
        match client.run_jobs(&bad_tag).unwrap_err() {
            ServeError::Server(msg) => assert!(msg.contains("unparseable"), "{msg}"),
            other => panic!("expected a server rejection, got {other}"),
        }
        match client.submit(&bad_tag).unwrap_err() {
            ServeError::Server(msg) => assert!(msg.contains("unparseable"), "{msg}"),
            other => panic!("expected a server rejection, got {other}"),
        }
        // A config whose geometry would panic the cache constructors is
        // rejected up front, not executed.
        bad_tag[0].listing = counting_program(3).disassemble();
        bad_tag[0].config.hierarchy.l1_ways = 0;
        match client.run_jobs(&bad_tag).unwrap_err() {
            ServeError::Server(msg) => assert!(msg.contains("invalid hierarchy"), "{msg}"),
            other => panic!("expected a server rejection, got {other}"),
        }
        bad_tag[0].config.hierarchy.l1_ways = 4;
        bad_tag[0].config.hierarchy.l1_bytes = 12345; // not a power of two
        match client.run_jobs(&bad_tag).unwrap_err() {
            ServeError::Server(msg) => assert!(msg.contains("power of two"), "{msg}"),
            other => panic!("expected a server rejection, got {other}"),
        }
        // A TLB whose entry count does not divide into its way count used
        // to silently truncate the TLB; it is now rejected at the wire, on
        // both protocol versions.
        bad_tag[0].config.hierarchy.l1_bytes = 8192;
        bad_tag[0].config.hierarchy.tlb_entries = 387;
        bad_tag[0].config.hierarchy.tlb_ways = 6;
        match client.run_jobs(&bad_tag).unwrap_err() {
            ServeError::Server(msg) => {
                assert!(msg.contains("387 entries do not divide"), "{msg}");
            }
            other => panic!("expected a server rejection, got {other}"),
        }
        match client.submit(&bad_tag).unwrap_err() {
            ServeError::Server(msg) => {
                assert!(msg.contains("387 entries do not divide"), "{msg}");
            }
            other => panic!("expected a server rejection, got {other}"),
        }

        // The connection survives rejections; a good job still runs.
        let good = vec![WireJob::new(&counting_program(3), cfg, 0, 0)];
        let outs = client.run_jobs(&good).unwrap();
        assert_eq!(outs[0].ints, vec![3]);
        assert_eq!(client.stats().unwrap().misses, 1, "rejections ran nothing");

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn two_clients_share_the_store() {
        let (addr, handle) = spawn_server();
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        let jobs = vec![WireJob::new(&counting_program(9), cfg, 0, 0)];
        let mut a = Client::connect(addr).unwrap();
        let mut b = Client::connect(addr).unwrap();
        let out_a = a.run_jobs(&jobs).unwrap();
        let out_b = b.run_jobs(&jobs).unwrap();
        assert_eq!(out_a, out_b);
        let stats = a.stats().unwrap();
        assert_eq!(stats.misses, 1, "second client replays the first's cell");
        assert_eq!(stats.hits, 1);
        a.shutdown().unwrap();
        handle.join().unwrap();
    }

    /// The server-robustness acceptance test: torn frames and mid-SUBMIT
    /// disconnects must neither poison the store nor wedge the work
    /// queue — the next client sees the warm store and full service.
    #[test]
    fn torn_frames_do_not_wedge_the_server() {
        let (addr, handle) = spawn_server();
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        let jobs = vec![WireJob::new(&counting_program(9), cfg.clone(), 0, 0)];

        // Warm the store so we can verify it survives the abuse.
        let mut warmup = Client::connect(addr).unwrap();
        let expected = warmup.run_jobs(&jobs).unwrap();
        drop(warmup);

        // (a) A length prefix promising bytes that never arrive (client
        // dies mid-SUBMIT).
        {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(&500u32.to_le_bytes()).unwrap();
            raw.write_all(&[REQ_SUBMIT]).unwrap();
            raw.write_all(&[0u8; 37]).unwrap(); // 37 of the promised 499
        } // dropped: the server sees EOF mid-frame
          // (b) An insane length prefix (torn/corrupt frame header).
        {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
            raw.write_all(b"garbage").unwrap();
        }
        // (c) A half-written frame header.
        {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(&[7u8, 0]).unwrap();
        }
        // (d) A SUBMIT whose payload is truncated garbage: decodes fail,
        // the submission is rejected, nothing executes.
        {
            let mut raw = TcpStream::connect(addr).unwrap();
            let payload = 3u32.to_le_bytes(); // promises 3 jobs, provides none
            let len = (payload.len() + 1) as u32;
            raw.write_all(&len.to_le_bytes()).unwrap();
            raw.write_all(&[REQ_SUBMIT]).unwrap();
            raw.write_all(&payload).unwrap();
            // The server answers ERR (or closes); either way it keeps
            // serving below.
            let _ = read_frame(&mut raw);
        }

        // Full service for the next client, warm store intact.
        let mut client = Client::connect(addr).unwrap();
        let warm = client.run_jobs(&jobs).unwrap();
        assert_eq!(warm, expected, "the store survived the torn frames");
        let stats = client.stats().unwrap();
        assert_eq!(stats.misses, 1, "no torn frame executed anything");
        assert_eq!(stats.hits, 1, "the warm replay hit the store");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    /// A scripted fake server delivering index 0 twice: the client must
    /// fail loudly instead of silently overwriting the filled slot.
    #[test]
    fn duplicate_result_delivery_is_a_protocol_error() {
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        let jobs = vec![
            WireJob::new(&counting_program(3), cfg.clone(), 0, 0),
            WireJob::new(&counting_program(4), cfg.clone(), 0, 0),
        ];
        let outcome = {
            let p = counting_program(3);
            hardbound_exec::Engine::new(Machine::new(p, cfg)).run()
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_frame(&mut stream).unwrap(); // swallow the SUBMIT
            let frame = |start: u32| {
                let mut w = Writer::new();
                w.put_u32(start);
                w.put_u32(1);
                encode_outcome(&mut w, &outcome);
                w.into_bytes()
            };
            write_frame(&mut stream, RESP_RESULTS, &frame(0)).unwrap();
            write_frame(&mut stream, RESP_RESULTS, &frame(0)).unwrap(); // re-delivery
            let _ = write_frame(&mut stream, RESP_DONE, &2u32.to_le_bytes());
        });
        let mut client = Client::connect(addr).unwrap();
        match client.run_jobs(&jobs).unwrap_err() {
            ServeError::Protocol(msg) => assert!(msg.contains("duplicate"), "{msg}"),
            other => panic!("expected a protocol error, got {other}"),
        }
        fake.join().unwrap();
    }

    /// An out-of-range result range from a buggy server is also a loud
    /// protocol error.
    #[test]
    fn out_of_range_results_are_a_protocol_error() {
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        let jobs = vec![WireJob::new(&counting_program(3), cfg.clone(), 0, 0)];
        let outcome = {
            let p = counting_program(3);
            hardbound_exec::Engine::new(Machine::new(p, cfg)).run()
        };
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let _ = read_frame(&mut stream).unwrap();
            let mut w = Writer::new();
            w.put_u32(u32::MAX); // start far past the grid
            w.put_u32(1);
            encode_outcome(&mut w, &outcome);
            let _ = write_frame(&mut stream, RESP_RESULTS, &w.into_bytes());
        });
        let mut client = Client::connect(addr).unwrap();
        match client.run_jobs(&jobs).unwrap_err() {
            ServeError::Protocol(msg) => assert!(msg.contains("out of range"), "{msg}"),
            other => panic!("expected a protocol error, got {other}"),
        }
        fake.join().unwrap();
    }

    #[test]
    fn traced_ticket_returns_enclosed_server_spans() {
        let (addr, handle) = spawn_server_sharded(Some((1, 3)));
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        let jobs: Vec<WireJob> =
            (0..40) // > 1 chunk
                .map(|k| WireJob::new(&counting_program(5 + k), cfg.clone(), 0, 0))
                .collect();
        let expected = expected_outcomes(&jobs);

        let trace = TraceId(hardbound_telemetry::trace::fresh_id());
        let parent = SpanId(hardbound_telemetry::trace::fresh_id());
        let mut client = Client::connect(addr).unwrap();
        let (ticket, traced) = client
            .submit_traced(&jobs, Some(TraceCtx { trace, parent }))
            .unwrap();
        assert!(traced, "a telemetry server must accept SUBMIT3");
        let mut results: Vec<Option<RunOutcome>> = vec![None; jobs.len()];
        let mut spans = Vec::new();
        client
            .watch_into_traced(ticket, &mut results, &mut spans)
            .unwrap();
        let results: Vec<RunOutcome> = results.into_iter().map(Option::unwrap).collect();
        assert_eq!(results, expected, "tracing must not perturb results");

        // One ticket_exec root under the client's context, keyed by
        // ticket id and stamped with the shard index.
        let exec: Vec<&SpanEvent> = spans.iter().filter(|s| s.kind == "ticket_exec").collect();
        assert_eq!(exec.len(), 1, "{spans:?}");
        let exec = exec[0];
        assert_eq!(exec.trace, trace);
        assert_eq!(exec.parent, parent);
        assert_eq!(exec.field_u64("ticket"), Some(ticket));
        assert_eq!(exec.field_u64("cells"), Some(40));
        assert_eq!(exec.field_u64("shard_index"), Some(1));

        // Chunk spans parent under it, cover every cell exactly once, and
        // sit inside it (slack for µs wall-clock rounding).
        let chunks: Vec<&SpanEvent> = spans.iter().filter(|s| s.kind == "chunk").collect();
        assert_eq!(chunks.len(), 40usize.div_ceil(CHUNK));
        let mut cells = 0;
        for c in &chunks {
            assert_eq!(c.trace, trace);
            assert_eq!(c.parent, exec.span);
            assert_eq!(c.field_u64("ticket"), Some(ticket));
            cells += c.field_u64("cells").unwrap();
            assert!(c.start_us + 100 >= exec.start_us, "{c:?} vs {exec:?}");
            assert!(c.end_us() <= exec.end_us() + 100, "{c:?} vs {exec:?}");
        }
        assert_eq!(cells, 40);

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn untraced_tickets_never_see_a_spans_frame() {
        let (addr, handle) = spawn_server();
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        let jobs: Vec<WireJob> = (0..3)
            .map(|k| WireJob::new(&counting_program(5 + k), cfg.clone(), 0, 0))
            .collect();
        let mut client = Client::connect(addr).unwrap();
        let ticket = client.submit(&jobs).unwrap();
        let mut results: Vec<Option<RunOutcome>> = vec![None; jobs.len()];
        let mut spans = Vec::new();
        client
            .watch_into_traced(ticket, &mut results, &mut spans)
            .unwrap();
        assert!(spans.is_empty(), "{spans:?}");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    /// A scripted "old" server that rejects the SUBMIT3 frame kind the
    /// way the real dispatch loop does — the client must transparently
    /// fall back to SUBMIT2 on the same connection.
    #[test]
    fn submit_traced_falls_back_to_submit2_on_an_old_server() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let (kind, _) = read_frame(&mut stream).unwrap().unwrap();
            assert_eq!(kind, REQ_SUBMIT3);
            let mut w = Writer::new();
            w.put_str("unknown request kind");
            write_frame(&mut stream, RESP_ERR, &w.into_bytes()).unwrap();
            let (kind, payload) = read_frame(&mut stream).unwrap().unwrap();
            assert_eq!(kind, REQ_SUBMIT2, "client must retry without context");
            let tag_ok: Arc<TagCheck> = Arc::new(|_| true);
            let jobs = decode_submission2(&payload, &tag_ok).unwrap();
            let mut w = Writer::new();
            w.put_u64(77);
            w.put_u32(jobs.len() as u32);
            write_frame(&mut stream, RESP_TICKET, &w.into_bytes()).unwrap();
        });
        let cfg = MachineConfig::default();
        let jobs = vec![WireJob::new(&counting_program(3), cfg, 0, 0)];
        let ctx = TraceCtx {
            trace: TraceId(1),
            parent: SpanId(2),
        };
        let mut client = Client::connect(addr).unwrap();
        let (ticket, traced) = client.submit_traced(&jobs, Some(ctx)).unwrap();
        assert_eq!(ticket, 77);
        assert!(!traced, "fallback must report the lost trace context");
        fake.join().unwrap();
    }

    #[test]
    fn stats_and_metrics_report_ticket_lifecycle_and_cells() {
        let (addr, handle) = spawn_server();
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        let jobs: Vec<WireJob> = (0..9)
            .map(|k| WireJob::new(&counting_program(5 + k), cfg.clone(), 0, 0))
            .collect();
        let mut client = Client::connect(addr).unwrap();
        client.run_jobs_v2(&jobs).unwrap();
        client.run_jobs_v2(&jobs).unwrap(); // warm replay, still "executed"

        let stats = client.stats().unwrap();
        assert_eq!(stats.tickets_finished, 2);
        assert_eq!(stats.tickets_active, 0);
        assert_eq!(stats.tickets_gcd, 0);
        assert_eq!(stats.cells_in_flight, 0, "drained grids leave no queue");
        assert!(stats.uptime_s < 600, "{}", stats.uptime_s);

        let text = client.metrics().unwrap();
        let get = |name| hardbound_telemetry::scrape_value(&text, name);
        assert_eq!(get("hbserve_cells_executed"), Some(18));
        assert_eq!(get("hbserve_tickets_created"), Some(2));
        assert_eq!(get("hbserve_tickets_finished"), Some(2));
        assert_eq!(get("hbserve_cells_in_flight"), Some(0));
        assert_eq!(get("hbserve_store_misses"), Some(9));
        assert_eq!(get("hbserve_store_hits"), Some(9));
        assert_eq!(
            get("hbserve_chunk_us_count"),
            Some(2),
            "one chunk per 9-cell grid: {text}"
        );
        assert!(text.contains("# TYPE hbserve_chunk_us histogram"), "{text}");

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    /// Satellite coverage: METRICS and PROFILE scrapes racing a grid
    /// mid-execution (plus concurrent profile flushes) must never tear —
    /// every scrape parses, profile invariants hold, and the monotonic
    /// counters never go backwards.
    #[test]
    fn concurrent_scrapes_mid_grid_are_atomic_and_monotonic() {
        use hardbound_telemetry::{BlockKey, BlockStat, Profile};
        let (addr, handle) = spawn_server();
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        let jobs: Vec<WireJob> = (0..96)
            .map(|k| WireJob::new(&counting_program(200 + k), cfg.clone(), 0, 0))
            .collect();
        // Ticketed submission: the grid drains in the background while the
        // scrapers below hammer the server.
        let ticket = {
            let mut c = Client::connect(addr).unwrap();
            c.submit(&jobs).unwrap()
        };
        // Concurrent "engine flush" traffic into the profile accumulator:
        // each flush adds 1 exec / 5 cycles to one block, so any snapshot
        // that tore a flush in half would break `cycles == 5 * execs`.
        const PROG: u64 = 0x5eed;
        let seeder = std::thread::spawn(|| {
            for i in 0..50u32 {
                let mut p = Profile::new();
                p.record(
                    BlockKey {
                        prog: PROG,
                        func: 0,
                        entry: i % 4,
                    },
                    &BlockStat {
                        name: "seeded".into(),
                        execs: 1,
                        cycles: 5,
                        elided: 0,
                        taken: 0,
                    },
                );
                hardbound_telemetry::profile::global().add(&p);
                std::thread::yield_now();
            }
        });
        let scraper = |addr: std::net::SocketAddr| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                let mut last_cells = 0u64;
                let mut last_execs = 0u64;
                for _ in 0..25 {
                    let text = c.metrics().unwrap();
                    let cells = hardbound_telemetry::scrape_value(&text, "hbserve_cells_executed")
                        .expect("metrics scrape must always carry the counter");
                    assert!(cells >= last_cells, "counter went backwards");
                    last_cells = cells;
                    let p = c.profile().unwrap();
                    let seeded: Vec<_> = p
                        .blocks
                        .iter()
                        .filter(|(k, _)| k.prog == PROG)
                        .map(|(_, s)| s)
                        .collect();
                    let execs: u64 = seeded.iter().map(|s| s.execs).sum();
                    let cycles: u64 = seeded.iter().map(|s| s.cycles).sum();
                    assert_eq!(cycles, 5 * execs, "torn profile snapshot");
                    assert!(execs >= last_execs, "profile went backwards");
                    last_execs = execs;
                }
            })
        };
        let scrapers: Vec<_> = (0..2).map(|_| scraper(addr)).collect();
        let mut collector = Client::connect(addr).unwrap();
        let mut results: Vec<Option<RunOutcome>> = vec![None; jobs.len()];
        collector.watch_into(ticket, &mut results).unwrap();
        for s in scrapers {
            s.join().unwrap();
        }
        seeder.join().unwrap();
        assert!(results.iter().all(Option::is_some));
        let final_cells = hardbound_telemetry::scrape_value(
            &collector.metrics().unwrap(),
            "hbserve_cells_executed",
        );
        assert_eq!(final_cells, Some(96), "the whole grid executed");
        let p = collector.profile().unwrap();
        let execs: u64 = p
            .blocks
            .iter()
            .filter(|(k, _)| k.prog == PROG)
            .map(|(_, s)| s.execs)
            .sum();
        assert_eq!(execs, 50, "every flush landed exactly once");
        collector.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn sharded_server_counts_owned_and_foreign_cells() {
        let (addr, handle) = spawn_server_sharded(Some((0, 3)));
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        // Enough distinct cells that both ownership classes occur.
        let jobs: Vec<WireJob> = (0..24)
            .map(|k| WireJob::new(&counting_program(5 + k), cfg.clone(), 0, 0))
            .collect();
        let mut client = Client::connect(addr).unwrap();
        client.run_jobs_v2(&jobs).unwrap();
        let stats = client.stats().unwrap();
        assert_eq!(stats.shard_index, 0);
        assert_eq!(stats.shard_count, 3);
        assert_eq!(stats.owned_cells + stats.foreign_cells, 24);
        assert!(stats.owned_cells > 0, "{stats:?}");
        assert!(stats.foreign_cells > 0, "{stats:?}");
        client.shutdown().unwrap();
        handle.join().unwrap();
    }
}
