//! The `hbserve` socket protocol: a length-prefixed request/response
//! framing over TCP with **work-queue semantics**.
//!
//! A client submits a grid of cells in one frame; the server dedups each
//! cell against the shared (persistent) result store, drains the misses
//! through the existing lock-free `exec::batch` scheduler in bounded
//! **chunks**, and streams each chunk's outcomes back as soon as it
//! completes — the client consumes results incrementally while later
//! chunks still execute, and concurrent clients interleave at chunk
//! granularity because the service lock is released between chunks.
//! Cross-client dedup falls out of the shared store: a cell one client
//! computed replays for every later submitter.
//!
//! ## Frames
//!
//! Every frame is `length (u32, LE) | kind (u8) | payload`; the length
//! counts the kind byte plus the payload. Requests:
//!
//! | kind | payload |
//! |---|---|
//! | `SUBMIT` | job count (u32), then per job: program listing (str), [`MachineConfig`], salt (u64), tag (u64) |
//! | `STATS` | empty |
//! | `SHUTDOWN` | empty |
//!
//! Responses: `RESULTS` (start index u32, count u32, then `count` encoded
//! [`RunOutcome`]s), `DONE` (total results u32), `STATS` (counters), and
//! `ERR` (diagnostic string — the whole submission is rejected; nothing
//! executed).
//!
//! Programs travel as their **assembly listing** — the workspace's pinned
//! program serialization (round-trips through `isa::parse_program`, and
//! its bytes are exactly what `ProgramId` hashes), so a re-parsed program
//! lands on the same store keys as the client's and byte-identity holds
//! end to end.

use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use hardbound_core::{Machine, MachineConfig, RunOutcome};
use hardbound_exec::service::Job;
use hardbound_isa::Program;

use crate::persist::PersistentService;
use crate::wire::{
    decode_config, decode_outcome, encode_config, encode_outcome, Reader, WireError, Writer,
};

/// Request kinds (client → server).
const REQ_SUBMIT: u8 = 1;
const REQ_STATS: u8 = 2;
const REQ_SHUTDOWN: u8 = 3;
/// Response kinds (server → client).
const RESP_RESULTS: u8 = 16;
const RESP_DONE: u8 = 17;
const RESP_STATS: u8 = 18;
const RESP_ERR: u8 = 19;

/// Cells executed (and streamed) per service-lock acquisition: small
/// enough that results flow back while the tail still runs and that
/// concurrent clients interleave, large enough to amortize the lock.
const CHUNK: usize = 32;

/// Sanity cap on one frame (a submission of thousands of cells fits in a
/// few MB; anything past this is a protocol error, not data).
const MAX_FRAME: u32 = 1 << 30;

/// One cell of a remote submission.
#[derive(Clone, Debug)]
pub struct WireJob {
    /// The program as its assembly listing (`Program::disassemble`).
    pub listing: String,
    /// Full machine configuration.
    pub config: MachineConfig,
    /// Result-store key salt (see `exec::service::config_fingerprint`).
    pub salt: u64,
    /// Opaque machine-builder tag (the runtime sends its compiler mode).
    pub tag: u64,
}

impl WireJob {
    /// A wire job for `program` (rendered to its listing here).
    #[must_use]
    pub fn new(program: &Program, config: MachineConfig, salt: u64, tag: u64) -> WireJob {
        WireJob {
            listing: program.disassemble(),
            config,
            salt,
            tag,
        }
    }
}

/// Why a client call failed.
#[derive(Debug)]
pub enum ServeError {
    /// Socket-level failure.
    Io(io::Error),
    /// A frame failed to decode.
    Wire(WireError),
    /// The server rejected the request with a diagnostic.
    Server(String),
    /// The server violated the protocol (wrong frame kind/shape).
    Protocol(&'static str),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket error: {e}"),
            ServeError::Wire(e) => write!(f, "malformed frame: {e}"),
            ServeError::Server(msg) => write!(f, "server error: {msg}"),
            ServeError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> ServeError {
        ServeError::Io(e)
    }
}

impl From<WireError> for ServeError {
    fn from(e: WireError) -> ServeError {
        ServeError::Wire(e)
    }
}

fn write_frame(stream: &mut TcpStream, kind: u8, payload: &[u8]) -> io::Result<()> {
    let len = (payload.len() + 1) as u32;
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(payload);
    stream.write_all(&frame)
}

/// Reads one frame; `Ok(None)` on a clean EOF at a frame boundary.
fn read_frame(stream: &mut TcpStream) -> Result<Option<(u8, Vec<u8>)>, ServeError> {
    let mut len = [0u8; 4];
    match stream.read_exact(&mut len) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e.into()),
    }
    let len = u32::from_le_bytes(len);
    if len == 0 || len > MAX_FRAME {
        return Err(ServeError::Protocol("frame length out of range"));
    }
    // The kind byte is read separately so the (possibly multi-MB) payload
    // lands directly at offset 0 — no shift-by-one memmove afterwards.
    let mut kind = [0u8; 1];
    stream.read_exact(&mut kind)?;
    let mut payload = vec![0u8; len as usize - 1];
    stream.read_exact(&mut payload)?;
    Ok(Some((kind[0], payload)))
}

/// Builds the machine for one remote cell; `hbserve` maps the tag back to
/// a compiler mode and attaches mode-specific extras (object tables).
pub type Builder = dyn Fn(Program, MachineConfig, u64) -> Machine + Send + Sync;

/// Validates a tag before any cell executes; unknown tags reject the
/// whole submission with a diagnostic instead of a builder panic.
pub type TagCheck = dyn Fn(u64) -> bool + Send + Sync;

/// Store/server counters as reported over the wire by a `STATS` request.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RemoteServerStats {
    /// Result-store hits (cells answered without simulation).
    pub hits: u64,
    /// Result-store misses (cells executed).
    pub misses: u64,
    /// Store entries evicted.
    pub evicted: u64,
    /// Stored results currently resident.
    pub store_len: u64,
    /// Log records appended since the server opened its store.
    pub log_appended: u64,
    /// Log flushes.
    pub log_flushes: u64,
}

/// The `hbserve` TCP front end: owns the shared [`PersistentService`]
/// and serves until a `SHUTDOWN` request.
pub struct Server {
    listener: TcpListener,
    svc: Arc<Mutex<PersistentService>>,
    build: Arc<Builder>,
    tag_ok: Arc<TagCheck>,
    shutdown: Arc<AtomicBool>,
    /// Requests currently being served (not idle connections); `run`
    /// drains this to zero after the accept loop stops, so a shutdown
    /// never cuts another client's in-flight submission mid-stream.
    busy: Arc<std::sync::atomic::AtomicUsize>,
}

/// Decrements the busy count when a request finishes (however it ends).
struct BusyGuard<'a>(&'a std::sync::atomic::AtomicUsize);

impl Drop for BusyGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Server {
    /// Binds `addr` (use port `0` for an ephemeral port) around `svc`.
    /// `build` constructs the machine for a missing cell; `tag_ok`
    /// pre-validates job tags.
    ///
    /// # Errors
    ///
    /// Propagates bind errors.
    pub fn bind(
        addr: impl ToSocketAddrs,
        svc: PersistentService,
        build: Arc<Builder>,
        tag_ok: Arc<TagCheck>,
    ) -> io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            svc: Arc::new(Mutex::new(svc)),
            build,
            tag_ok,
            shutdown: Arc::new(AtomicBool::new(false)),
            busy: Arc::new(std::sync::atomic::AtomicUsize::new(0)),
        })
    }

    /// The bound address (read the ephemeral port from here).
    ///
    /// # Errors
    ///
    /// Propagates the OS query error.
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Shared handle to the service (checkpointing at exit, tests).
    #[must_use]
    pub fn service(&self) -> Arc<Mutex<PersistentService>> {
        Arc::clone(&self.svc)
    }

    /// Accepts and serves connections (one thread each) until a client
    /// sends `SHUTDOWN`, then waits for every in-flight connection to
    /// finish — a shutdown never cuts another client's submission
    /// mid-stream, and the caller can checkpoint safely after `run`
    /// returns.
    ///
    /// # Errors
    ///
    /// Propagates accept errors.
    pub fn run(&self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn?;
            let svc = Arc::clone(&self.svc);
            let build = Arc::clone(&self.build);
            let tag_ok = Arc::clone(&self.tag_ok);
            let shutdown = Arc::clone(&self.shutdown);
            let wake = self.listener.local_addr();
            let busy = Arc::clone(&self.busy);
            std::thread::spawn(move || {
                handle_conn(stream, &svc, &build, &tag_ok, &shutdown, &busy, wake);
            });
        }
        // Drain in-flight requests. Handlers increment `busy` *before*
        // re-checking the shutdown flag, so once this loop reads zero
        // after the flag is set, any later request observes the flag and
        // is rejected — no request can slip past the drain. Idle
        // connections (no request in flight) are simply abandoned; their
        // clients see EOF at a frame boundary.
        while self.busy.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        Ok(())
    }
}

/// Serves one connection until EOF or shutdown.
fn handle_conn(
    mut stream: TcpStream,
    svc: &Mutex<PersistentService>,
    build: &Arc<Builder>,
    tag_ok: &Arc<TagCheck>,
    shutdown: &AtomicBool,
    busy: &std::sync::atomic::AtomicUsize,
    wake: io::Result<std::net::SocketAddr>,
) {
    let _ = stream.set_nodelay(true);
    loop {
        let (kind, payload) = match read_frame(&mut stream) {
            Ok(Some(frame)) => frame,
            Ok(None) | Err(_) => return,
        };
        // Mark the request in flight *before* re-checking the shutdown
        // flag: the drain loop in `Server::run` reads the counter after
        // setting the flag, so either it sees this request and waits, or
        // this check sees the flag and rejects — never both missed.
        busy.fetch_add(1, Ordering::SeqCst);
        let _busy = BusyGuard(busy);
        if shutdown.load(Ordering::SeqCst) && kind != REQ_SHUTDOWN {
            let mut w = Writer::new();
            w.put_str("server is shutting down");
            let _ = write_frame(&mut stream, RESP_ERR, &w.into_bytes());
            return;
        }
        let result = match kind {
            REQ_SUBMIT => serve_submission(&mut stream, svc, build, tag_ok, &payload),
            REQ_STATS => serve_stats(&mut stream, svc),
            REQ_SHUTDOWN => {
                shutdown.store(true, Ordering::SeqCst);
                let _ = write_frame(&mut stream, RESP_DONE, &0u32.to_le_bytes());
                // The accept loop is blocked in `accept`; poke it so it
                // observes the flag and exits.
                if let Ok(addr) = wake {
                    let _ = TcpStream::connect(addr);
                }
                return;
            }
            _ => {
                let mut w = Writer::new();
                w.put_str("unknown request kind");
                write_frame(&mut stream, RESP_ERR, &w.into_bytes()).map_err(ServeError::from)
            }
        };
        if result.is_err() {
            return; // connection is broken; nothing left to report
        }
    }
}

fn serve_stats(stream: &mut TcpStream, svc: &Mutex<PersistentService>) -> Result<(), ServeError> {
    let stats = svc.lock().unwrap_or_else(PoisonError::into_inner).stats();
    let log = stats.log.unwrap_or_default();
    let mut w = Writer::new();
    w.put_u64(stats.service.store.hits);
    w.put_u64(stats.service.store.misses);
    w.put_u64(stats.service.store.evicted);
    w.put_u64(stats.service.store_len as u64);
    w.put_u64(log.appended);
    w.put_u64(log.flushes);
    write_frame(stream, RESP_STATS, &w.into_bytes())?;
    Ok(())
}

/// Decodes, validates and executes one submission, streaming results in
/// chunk-sized `RESULTS` frames and a final `DONE`.
fn serve_submission(
    stream: &mut TcpStream,
    svc: &Mutex<PersistentService>,
    build: &Arc<Builder>,
    tag_ok: &Arc<TagCheck>,
    payload: &[u8],
) -> Result<(), ServeError> {
    let jobs = match decode_submission(payload, tag_ok) {
        Ok(jobs) => jobs,
        Err(msg) => {
            let mut w = Writer::new();
            w.put_str(&msg);
            write_frame(stream, RESP_ERR, &w.into_bytes())?;
            return Ok(());
        }
    };
    let mut sent = 0u32;
    for chunk in jobs.chunks(CHUNK) {
        let outs = {
            let mut svc = svc.lock().unwrap_or_else(PoisonError::into_inner);
            svc.run_batch(chunk, |program, config, &tag| build(program, config, tag))
        };
        let mut w = Writer::new();
        w.put_u32(sent);
        w.put_u32(outs.len() as u32);
        for out in &outs {
            encode_outcome(&mut w, out);
        }
        write_frame(stream, RESP_RESULTS, &w.into_bytes())?;
        sent += outs.len() as u32;
    }
    write_frame(stream, RESP_DONE, &sent.to_le_bytes())?;
    Ok(())
}

/// Decodes a `SUBMIT` payload into service jobs, validating programs and
/// tags up front (reject-before-execute).
fn decode_submission(payload: &[u8], tag_ok: &Arc<TagCheck>) -> Result<Vec<Job<u64>>, String> {
    let mut r = Reader::new(payload);
    let count = r.get_u32().map_err(|e| e.to_string())?;
    let mut jobs = Vec::with_capacity(count.min(4096) as usize);
    for i in 0..count {
        let listing = r.get_str().map_err(|e| format!("job {i}: {e}"))?;
        let program = hardbound_isa::parse_program(listing)
            .map_err(|e| format!("job {i}: unparseable program listing: {e}"))?;
        program
            .validate()
            .map_err(|e| format!("job {i}: invalid program: {e}"))?;
        let config = decode_config(&mut r).map_err(|e| format!("job {i}: {e}"))?;
        // Reject-before-execute covers the config too: geometry the
        // hierarchy constructors would `assert!` on must come back as an
        // ERR frame, not a worker panic under the service lock.
        config
            .hierarchy
            .validate()
            .map_err(|e| format!("job {i}: invalid hierarchy config: {e}"))?;
        let salt = r.get_u64().map_err(|e| format!("job {i}: {e}"))?;
        let tag = r.get_u64().map_err(|e| format!("job {i}: {e}"))?;
        if !tag_ok(tag) {
            return Err(format!("job {i}: unknown machine-builder tag {tag}"));
        }
        jobs.push(Job {
            program,
            config,
            salt,
            tag,
        });
    }
    if !r.is_exhausted() {
        return Err("trailing bytes after the last job".to_owned());
    }
    Ok(jobs)
}

/// A client connection to an `hbserve` server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (the `HB_SERVE_ADDR` value).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Submits `jobs` and collects the streamed outcomes, in input order.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on socket failures, malformed frames, or a server
    /// rejection.
    pub fn run_jobs(&mut self, jobs: &[WireJob]) -> Result<Vec<RunOutcome>, ServeError> {
        let mut w = Writer::new();
        w.put_u32(jobs.len() as u32);
        for job in jobs {
            w.put_str(&job.listing);
            encode_config(&mut w, &job.config);
            w.put_u64(job.salt);
            w.put_u64(job.tag);
        }
        write_frame(&mut self.stream, REQ_SUBMIT, &w.into_bytes())?;

        let mut results: Vec<Option<RunOutcome>> = vec![None; jobs.len()];
        loop {
            let (kind, payload) = read_frame(&mut self.stream)?
                .ok_or(ServeError::Protocol("server closed mid-submission"))?;
            match kind {
                RESP_RESULTS => {
                    let mut r = Reader::new(&payload);
                    let start = r.get_u32()? as usize;
                    let count = r.get_u32()? as usize;
                    if start + count > results.len() {
                        return Err(ServeError::Protocol("result indices out of range"));
                    }
                    for slot in &mut results[start..start + count] {
                        *slot = Some(decode_outcome(&mut r)?);
                    }
                }
                RESP_DONE => break,
                RESP_ERR => {
                    let mut r = Reader::new(&payload);
                    return Err(ServeError::Server(r.get_str()?.to_owned()));
                }
                _ => return Err(ServeError::Protocol("unexpected frame kind")),
            }
        }
        results
            .into_iter()
            .collect::<Option<Vec<RunOutcome>>>()
            .ok_or(ServeError::Protocol("server omitted results"))
    }

    /// Fetches the server's store/log counters.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on socket failures or malformed frames.
    pub fn stats(&mut self) -> Result<RemoteServerStats, ServeError> {
        write_frame(&mut self.stream, REQ_STATS, &[])?;
        let (kind, payload) =
            read_frame(&mut self.stream)?.ok_or(ServeError::Protocol("server closed"))?;
        if kind != RESP_STATS {
            return Err(ServeError::Protocol("expected a STATS response"));
        }
        let mut r = Reader::new(&payload);
        Ok(RemoteServerStats {
            hits: r.get_u64()?,
            misses: r.get_u64()?,
            evicted: r.get_u64()?,
            store_len: r.get_u64()?,
            log_appended: r.get_u64()?,
            log_flushes: r.get_u64()?,
        })
    }

    /// Asks the server to shut down after in-flight connections finish.
    ///
    /// # Errors
    ///
    /// [`ServeError`] on socket failures.
    pub fn shutdown(&mut self) -> Result<(), ServeError> {
        write_frame(&mut self.stream, REQ_SHUTDOWN, &[])?;
        let (kind, _) =
            read_frame(&mut self.stream)?.ok_or(ServeError::Protocol("server closed"))?;
        if kind != RESP_DONE {
            return Err(ServeError::Protocol("expected a DONE response"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hardbound_isa::{CmpOp, FunctionBuilder, Reg};

    fn counting_program(limit: i32) -> Program {
        let mut f = FunctionBuilder::new("main", 0);
        f.li(Reg::A0, 0);
        let head = f.bind_label();
        f.addi(Reg::A0, Reg::A0, 1);
        let done = f.new_label();
        f.branch(CmpOp::Ge, Reg::A0, limit, done);
        f.jump(head);
        f.bind(done);
        f.sys(hardbound_isa::SysCall::PrintInt);
        f.li(Reg::A0, 0);
        f.halt();
        Program::with_entry(vec![f.finish()])
    }

    fn spawn_server() -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let svc = PersistentService::new(2);
        let build: Arc<Builder> = Arc::new(|p, cfg, _tag| Machine::new(p, cfg));
        let tag_ok: Arc<TagCheck> = Arc::new(|tag| tag < 5);
        let server = Server::bind("127.0.0.1:0", svc, build, tag_ok).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = std::thread::spawn(move || server.run().unwrap());
        (addr, handle)
    }

    #[test]
    fn submit_streams_byte_identical_results_and_replays_warm() {
        let (addr, handle) = spawn_server();
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        let jobs: Vec<WireJob> =
            (0..67) // > 2 chunks
                .map(|k| WireJob::new(&counting_program(5 + k), cfg.clone(), 0, 0))
                .collect();
        let expected: Vec<RunOutcome> = jobs
            .iter()
            .map(|j| {
                let p = hardbound_isa::parse_program(&j.listing).unwrap();
                hardbound_exec::Engine::new(Machine::new(p, j.config.clone())).run()
            })
            .collect();

        let mut client = Client::connect(addr).unwrap();
        let cold = client.run_jobs(&jobs).unwrap();
        assert_eq!(cold, expected, "remote execution must be byte-identical");
        let warm = client.run_jobs(&jobs).unwrap();
        assert_eq!(warm, expected, "warm replay must be byte-identical");
        let stats = client.stats().unwrap();
        assert_eq!(stats.misses, 67, "cold pass executed every cell");
        assert_eq!(stats.hits, 67, "warm pass replayed every cell");

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn bad_submissions_are_rejected_without_executing() {
        let (addr, handle) = spawn_server();
        let cfg = MachineConfig::default();
        let mut client = Client::connect(addr).unwrap();

        let mut bad_tag = vec![WireJob::new(&counting_program(3), cfg.clone(), 0, 99)];
        match client.run_jobs(&bad_tag).unwrap_err() {
            ServeError::Server(msg) => assert!(msg.contains("tag 99"), "{msg}"),
            other => panic!("expected a server rejection, got {other}"),
        }
        bad_tag[0].tag = 0;
        bad_tag[0].listing = "frobnicate a0\n".to_owned();
        match client.run_jobs(&bad_tag).unwrap_err() {
            ServeError::Server(msg) => assert!(msg.contains("unparseable"), "{msg}"),
            other => panic!("expected a server rejection, got {other}"),
        }
        // A config whose geometry would panic the cache constructors is
        // rejected up front, not executed.
        bad_tag[0].listing = counting_program(3).disassemble();
        bad_tag[0].config.hierarchy.l1_ways = 0;
        match client.run_jobs(&bad_tag).unwrap_err() {
            ServeError::Server(msg) => assert!(msg.contains("invalid hierarchy"), "{msg}"),
            other => panic!("expected a server rejection, got {other}"),
        }
        bad_tag[0].config.hierarchy.l1_ways = 4;
        bad_tag[0].config.hierarchy.l1_bytes = 12345; // not a power of two
        match client.run_jobs(&bad_tag).unwrap_err() {
            ServeError::Server(msg) => assert!(msg.contains("power of two"), "{msg}"),
            other => panic!("expected a server rejection, got {other}"),
        }

        // The connection survives rejections; a good job still runs.
        let good = vec![WireJob::new(&counting_program(3), cfg, 0, 0)];
        let outs = client.run_jobs(&good).unwrap();
        assert_eq!(outs[0].ints, vec![3]);
        assert_eq!(client.stats().unwrap().misses, 1, "rejections ran nothing");

        client.shutdown().unwrap();
        handle.join().unwrap();
    }

    #[test]
    fn two_clients_share_the_store() {
        let (addr, handle) = spawn_server();
        let cfg = MachineConfig::default().with_fuel(1_000_000);
        let jobs = vec![WireJob::new(&counting_program(9), cfg, 0, 0)];
        let mut a = Client::connect(addr).unwrap();
        let mut b = Client::connect(addr).unwrap();
        let out_a = a.run_jobs(&jobs).unwrap();
        let out_b = b.run_jobs(&jobs).unwrap();
        assert_eq!(out_a, out_b);
        let stats = a.stats().unwrap();
        assert_eq!(stats.misses, 1, "second client replays the first's cell");
        assert_eq!(stats.hits, 1);
        a.shutdown().unwrap();
        handle.join().unwrap();
    }
}
