//! The spatial-violation test corpus of paper §5.2.
//!
//! The paper validates HardBound against "a suite of 291 spatial memory
//! violations [Kratkiewicz & Lippmann]: ... various combinations of: reads
//! and writes; upper and lower bounds; stack, heap, and global data
//! segments; and various addressing schemes and aliasing situations. Each
//! test case has two versions: one with the violation and one without, to
//! allow testing for false positives."
//!
//! [`corpus`] generates an equivalent suite (288 pairs) as the cartesian
//! product of exactly those dimensions, and [`run_corpus`] executes every
//! pair under a chosen protection scheme, reporting detections, misses and
//! false positives.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use hardbound_compiler::Mode;
use hardbound_core::{PointerEncoding, Trap};
use hardbound_runtime::compile_and_run_default;

/// Which data segment holds the overflowed object.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Region {
    /// `malloc`ed object.
    Heap,
    /// Stack (local) array.
    Stack,
    /// Global array.
    Global,
}

/// Read or write access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Access {
    /// Out-of-bounds load.
    Read,
    /// Out-of-bounds store.
    Write,
}

/// Which bound the access violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Boundary {
    /// Past the end of the object.
    Upper,
    /// Before the beginning of the object.
    Lower,
}

/// Element width of the accessed array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Width {
    /// `char` elements.
    Byte,
    /// `int` elements.
    Word,
}

/// How the out-of-bounds address is formed (the paper's "various
/// addressing schemes and aliasing situations").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Addressing {
    /// `a[K]` with a constant index.
    DirectIndex,
    /// `a[i]` with the index in a variable.
    VariableIndex,
    /// `*(a + K)` via explicit pointer arithmetic.
    PointerArith,
    /// The pointer is passed to another function which performs the
    /// access (inter-procedural aliasing).
    ViaFunction,
    /// The pointer is stored to memory, reloaded, and then dereferenced
    /// (metadata must survive the memory round trip).
    Reloaded,
    /// The object is an array embedded in a struct — the sub-object case
    /// object-table schemes cannot protect (§2.2).
    SubObject,
}

/// How far past the boundary the access lands.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Magnitude {
    /// One element past (the classic off-by-one).
    One,
    /// 64 elements past (a "large" overflow that hops red zones).
    Far,
}

impl Magnitude {
    fn elements(self) -> i32 {
        match self {
            Magnitude::One => 1,
            Magnitude::Far => 64,
        }
    }
}

/// One violation/benign program pair.
#[derive(Clone, Debug)]
pub struct TestCase {
    /// Stable identifier, e.g. `heap-write-upper-word-ptrarith-far`.
    pub id: String,
    /// Region dimension.
    pub region: Region,
    /// Access dimension.
    pub access: Access,
    /// Boundary dimension.
    pub boundary: Boundary,
    /// Width dimension.
    pub width: Width,
    /// Addressing dimension.
    pub addressing: Addressing,
    /// Magnitude dimension.
    pub magnitude: Magnitude,
    /// Program containing the violation.
    pub bad_source: String,
    /// Twin program with the access in bounds.
    pub ok_source: String,
}

const ELEMS: i32 = 8;

fn build_source(
    region: Region,
    access: Access,
    width: Width,
    addressing: Addressing,
    index: i32,
) -> String {
    let ty = match width {
        Width::Byte => "char",
        Width::Word => "int",
    };
    let mut s = String::new();

    // Object declaration (and helper) prologue.
    match addressing {
        Addressing::SubObject => {
            s.push_str(&format!(
                "struct box {{ {ty} arr[{ELEMS}]; int sentinel; }};\n"
            ));
            if region == Region::Global {
                s.push_str("struct box g_box;\n");
            }
        }
        _ => {
            if region == Region::Global {
                s.push_str(&format!("{ty} g_arr[{ELEMS}];\n"));
            }
        }
    }
    if addressing == Addressing::Reloaded {
        s.push_str(&format!("{ty} *g_slot;\n"));
    }
    if addressing == Addressing::ViaFunction {
        let body = match access {
            Access::Read => "return p[i];".to_string(),
            Access::Write => "p[i] = 1; return 0;".to_string(),
        };
        s.push_str(&format!("int helper({ty} *p, int i) {{ {body} }}\n"));
    }

    s.push_str("int main() {\n");

    // Materialize the array pointer `a`.
    match (region, addressing) {
        (Region::Heap, Addressing::SubObject) => {
            s.push_str("    struct box *b = (struct box*)malloc(sizeof(struct box));\n");
            s.push_str(&format!("    {ty} *a = b->arr;\n"));
        }
        (Region::Stack, Addressing::SubObject) => {
            s.push_str("    struct box b;\n");
            s.push_str("    b.sentinel = 7;\n");
            s.push_str(&format!("    {ty} *a = b.arr;\n"));
        }
        (Region::Global, Addressing::SubObject) => {
            s.push_str(&format!("    {ty} *a = g_box.arr;\n"));
        }
        (Region::Heap, _) => {
            s.push_str(&format!(
                "    {ty} *a = ({ty}*)malloc({ELEMS} * sizeof({ty}));\n"
            ));
        }
        (Region::Stack, _) => {
            s.push_str(&format!("    {ty} local[{ELEMS}];\n"));
            s.push_str(&format!("    {ty} *a = local;\n"));
        }
        (Region::Global, _) => {
            s.push_str(&format!("    {ty} *a = g_arr;\n"));
        }
    }

    // Initialize in-bounds contents so benign reads are well-defined.
    s.push_str(&format!(
        "    for (int k = 0; k < {ELEMS}; k = k + 1) a[k] = 1;\n"
    ));

    // The access expression at `index`.
    let stmt = match addressing {
        Addressing::DirectIndex | Addressing::SubObject => match access {
            Access::Read => format!("    int v = a[{index}];\n"),
            Access::Write => format!("    a[{index}] = 2;\n"),
        },
        Addressing::VariableIndex => {
            let pre = format!("    int i = {index};\n");
            match access {
                Access::Read => format!("{pre}    int v = a[i];\n"),
                Access::Write => format!("{pre}    a[i] = 2;\n"),
            }
        }
        Addressing::PointerArith => {
            let pre = format!("    {ty} *p = a + {index};\n");
            match access {
                Access::Read => format!("{pre}    int v = *p;\n"),
                Access::Write => format!("{pre}    *p = 2;\n"),
            }
        }
        Addressing::ViaFunction => match access {
            Access::Read => format!("    int v = helper(a, {index});\n"),
            Access::Write => format!("    helper(a, {index});\n    int v = 0;\n"),
        },
        Addressing::Reloaded => {
            let pre = "    g_slot = a;\n";
            match access {
                Access::Read => format!("{pre}    int v = g_slot[{index}];\n"),
                Access::Write => format!("{pre}    g_slot[{index}] = 2;\n"),
            }
        }
    };
    s.push_str(&stmt);
    if matches!(access, Access::Write) && !matches!(addressing, Addressing::ViaFunction) {
        s.push_str("    int v = 0;\n");
    }
    s.push_str("    print_int(v + 1);\n");
    s.push_str("    return 0;\n}\n");
    s
}

/// Generates the full corpus: 3 regions × 2 accesses × 2 boundaries × 2
/// widths × 6 addressing schemes × 2 magnitudes = 288 pairs (the paper ran
/// 286 of its 291).
#[must_use]
pub fn corpus() -> Vec<TestCase> {
    let mut cases = Vec::new();
    for region in [Region::Heap, Region::Stack, Region::Global] {
        for access in [Access::Read, Access::Write] {
            for boundary in [Boundary::Upper, Boundary::Lower] {
                for width in [Width::Byte, Width::Word] {
                    for addressing in [
                        Addressing::DirectIndex,
                        Addressing::VariableIndex,
                        Addressing::PointerArith,
                        Addressing::ViaFunction,
                        Addressing::Reloaded,
                        Addressing::SubObject,
                    ] {
                        for magnitude in [Magnitude::One, Magnitude::Far] {
                            let bad_index = match boundary {
                                Boundary::Upper => ELEMS - 1 + magnitude.elements(),
                                Boundary::Lower => -magnitude.elements(),
                            };
                            let ok_index = match boundary {
                                Boundary::Upper => ELEMS - 1,
                                Boundary::Lower => 0,
                            };
                            let id = format!(
                                "{region:?}-{access:?}-{boundary:?}-{width:?}-{addressing:?}-{magnitude:?}"
                            )
                            .to_lowercase();
                            cases.push(TestCase {
                                id,
                                region,
                                access,
                                boundary,
                                width,
                                addressing,
                                magnitude,
                                bad_source: build_source(
                                    region, access, width, addressing, bad_index,
                                ),
                                ok_source: build_source(
                                    region, access, width, addressing, ok_index,
                                ),
                            });
                        }
                    }
                }
            }
        }
    }
    cases
}

/// Outcome of running the corpus under one protection scheme.
#[derive(Clone, Debug, Default)]
pub struct CorpusReport {
    /// Pairs executed.
    pub total: usize,
    /// Violating programs that trapped with a spatial-safety violation.
    pub detected: usize,
    /// Violating programs that ran to completion (undetected violations).
    pub missed: Vec<String>,
    /// Benign programs that trapped (false positives).
    pub false_positives: Vec<String>,
    /// Compilation or infrastructure failures (should be empty).
    pub errors: Vec<String>,
}

impl CorpusReport {
    /// `true` when every violation was detected with no false positives.
    #[must_use]
    pub fn is_perfect(&self) -> bool {
        self.detected == self.total
            && self.missed.is_empty()
            && self.false_positives.is_empty()
            && self.errors.is_empty()
    }
}

impl fmt::Display for CorpusReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pairs run:        {}", self.total)?;
        writeln!(f, "detected:         {}", self.detected)?;
        writeln!(f, "missed:           {}", self.missed.len())?;
        writeln!(f, "false positives:  {}", self.false_positives.len())?;
        write!(f, "errors:           {}", self.errors.len())
    }
}

/// Is this trap an acceptable "detection" for `mode`?
#[must_use]
pub fn is_detection(mode: Mode, trap: &Trap) -> bool {
    match mode {
        Mode::HardBound | Mode::MallocOnly => trap.is_spatial_violation(),
        Mode::SoftBound => matches!(trap, Trap::SoftwareAbort { .. }),
        Mode::ObjectTable => matches!(trap, Trap::ObjectTableViolation { .. }),
        Mode::Baseline => false,
    }
}

/// Outcome of one violation/benign pair under one scheme — the unit the
/// parallel corpus drivers (`report::experiments` via `exec::batch`) fan
/// out, aggregated in corpus order by [`CorpusReport::collect`] so the
/// parallel report is byte-identical to the serial one.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// The violating twin trapped with `mode`'s own detection trap.
    pub detected: bool,
    /// Case id, if the violation ran to completion undetected.
    pub missed: Option<String>,
    /// Description, if the benign twin trapped.
    pub false_positive: Option<String>,
    /// Compilation / unexpected-trap failures.
    pub errors: Vec<String>,
}

/// Classifies the outcomes of one violation/benign pair under `mode` into
/// a [`CaseResult`]. Outcomes arrive as `Result`s so compilation failures
/// (`Err` carries the diagnostic) land in the error list exactly as the
/// all-in-one [`run_case`] reports them — which lets drivers that execute
/// the pair elsewhere (the corpus service) share one judging function with
/// the direct path.
#[must_use]
pub fn judge_pair(
    case: &TestCase,
    mode: Mode,
    bad: Result<&hardbound_core::RunOutcome, &str>,
    ok: Result<&hardbound_core::RunOutcome, &str>,
) -> CaseResult {
    let mut r = CaseResult {
        detected: false,
        missed: None,
        false_positive: None,
        errors: Vec::new(),
    };
    match bad {
        Ok(out) => match &out.trap {
            Some(t) if is_detection(mode, t) => r.detected = true,
            Some(other) => r
                .errors
                .push(format!("{}: unexpected trap {other:?}", case.id)),
            None => r.missed = Some(case.id.clone()),
        },
        Err(e) => r.errors.push(format!("{}: {e}", case.id)),
    }
    match ok {
        Ok(out) => {
            if let Some(t) = &out.trap {
                r.false_positive = Some(format!("{}: {t}", case.id));
            }
        }
        Err(e) => r.errors.push(format!("{} (ok twin): {e}", case.id)),
    }
    r
}

/// Runs one violation/benign pair under `mode`/`encoding` on the default
/// execution path (the block engine unless `HB_INTERP` is set).
#[must_use]
pub fn run_case(case: &TestCase, mode: Mode, encoding: PointerEncoding) -> CaseResult {
    let bad = compile_and_run_default(&case.bad_source, mode, encoding).map_err(|e| e.to_string());
    let ok = compile_and_run_default(&case.ok_source, mode, encoding).map_err(|e| e.to_string());
    judge_pair(
        case,
        mode,
        bad.as_ref().map_err(String::as_str),
        ok.as_ref().map_err(String::as_str),
    )
}

impl CorpusReport {
    /// Aggregates per-case results **in iteration order**, so a
    /// parallelized driver that preserves input order reproduces the
    /// serial report exactly.
    #[must_use]
    pub fn collect(results: impl IntoIterator<Item = CaseResult>) -> CorpusReport {
        let mut report = CorpusReport::default();
        for r in results {
            report.total += 1;
            if r.detected {
                report.detected += 1;
            }
            report.missed.extend(r.missed);
            report.false_positives.extend(r.false_positive);
            report.errors.extend(r.errors);
        }
        report
    }
}

/// Runs one filtered subset of the corpus under `mode`/`encoding`.
pub fn run_filtered(
    mode: Mode,
    encoding: PointerEncoding,
    mut filter: impl FnMut(&TestCase) -> bool,
) -> CorpusReport {
    CorpusReport::collect(
        corpus()
            .iter()
            .filter(|c| filter(c))
            .map(|case| run_case(case, mode, encoding)),
    )
}

/// Runs the entire corpus under `mode`/`encoding` (the §5.2 experiment).
#[must_use]
pub fn run_corpus(mode: Mode, encoding: PointerEncoding) -> CorpusReport {
    run_filtered(mode, encoding, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_288_pairs_with_unique_ids() {
        let c = corpus();
        assert_eq!(c.len(), 288);
        let mut ids: Vec<_> = c.iter().map(|t| t.id.clone()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 288, "ids must be unique");
    }

    #[test]
    fn sources_compile_smoke() {
        // Compile (don't run) a sample across the dimensions.
        let c = corpus();
        for case in c.iter().step_by(37) {
            hardbound_runtime::compile(&case.bad_source, Mode::HardBound)
                .unwrap_or_else(|e| panic!("{}: {e}\n{}", case.id, case.bad_source));
            hardbound_runtime::compile(&case.ok_source, Mode::HardBound)
                .unwrap_or_else(|e| panic!("{}: {e}", case.id));
        }
    }

    #[test]
    fn hardbound_detects_sampled_violations_without_false_positives() {
        // The full-corpus run is the `correctness_suite` bench target and
        // an integration test; sample here to keep unit tests fast.
        let mut n = 0;
        let report = run_filtered(Mode::HardBound, PointerEncoding::Intern4, |_| {
            n += 1;
            n % 13 == 0
        });
        assert!(
            report.is_perfect(),
            "{report}\nmissed: {:?}\nfp: {:?}\nerr: {:?}",
            report.missed,
            report.false_positives,
            report.errors
        );
        assert!(report.total > 10);
    }

    #[test]
    fn malloc_only_catches_heap_but_not_stack() {
        let heap = run_filtered(Mode::MallocOnly, PointerEncoding::Intern4, |c| {
            c.region == Region::Heap
                && c.addressing != Addressing::SubObject
                && c.magnitude == Magnitude::One
        });
        assert!(
            heap.missed.is_empty() && heap.false_positives.is_empty(),
            "malloc-only must protect heap objects: {heap}"
        );
        let stack = run_filtered(Mode::MallocOnly, PointerEncoding::Intern4, |c| {
            c.region == Region::Stack
                && c.addressing == Addressing::DirectIndex
                && c.magnitude == Magnitude::One
                && c.boundary == Boundary::Upper
        });
        assert!(
            stack.detected < stack.total,
            "malloc-only should miss (some) stack violations (§3.2 footnote 2)"
        );
    }

    #[test]
    fn object_table_misses_exactly_the_sub_object_cases() {
        let report = run_filtered(Mode::ObjectTable, PointerEncoding::Intern4, |c| {
            c.magnitude == Magnitude::One && c.boundary == Boundary::Upper
        });
        for miss in &report.missed {
            assert!(
                miss.contains("subobject"),
                "object table should only miss sub-object cases, missed {miss}"
            );
        }
        assert!(
            !report.missed.is_empty(),
            "§2.2: sub-object overflows are invisible"
        );
        assert!(
            report.false_positives.is_empty(),
            "{:?}",
            report.false_positives
        );
    }
}
