//! The §5.2 experiment as a test: every violation detected, no false
//! positives, under full HardBound instrumentation.

use hardbound_compiler::Mode;
use hardbound_core::PointerEncoding;
use hardbound_violations::run_corpus;

#[test]
fn hardbound_detects_all_288_with_no_false_positives() {
    let report = run_corpus(Mode::HardBound, PointerEncoding::Intern4);
    assert!(
        report.is_perfect(),
        "{report}\nmissed: {:?}\nfalse positives: {:?}\nerrors: {:?}",
        report.missed,
        report.false_positives,
        report.errors
    );
    assert_eq!(report.total, 288);
}

#[test]
fn softbound_also_detects_all() {
    let report = run_corpus(Mode::SoftBound, PointerEncoding::Intern4);
    assert!(
        report.is_perfect(),
        "{report}\nmissed: {:?}\nfp: {:?}\nerr: {:?}",
        report.missed,
        report.false_positives,
        report.errors
    );
}
