//! Forensics differential: every detected corpus violation must yield a
//! [`ViolationReport`] whose blame assignment is *correct* — the trap,
//! faulting PC, violated bounds and out-of-bounds distance agree with the
//! trap the machine raised, and the named `setbound` site really is a
//! `setbound` instruction in the program image. The same invariants are
//! checked through `hardbound_runtime::violation_report` (the re-run path
//! `hbrun` and traced cluster clients use), which must agree with the
//! report of the machine that actually trapped.

use hardbound_compiler::Mode;
use hardbound_core::{BoundsOrigin, PointerEncoding, Trap, ViolationReport};
use hardbound_isa::Inst;
use hardbound_runtime::{build_machine_with_config, compile, machine_config, violation_report};
use hardbound_violations::corpus;

/// Checks the blame-assignment invariants of one report against the trap
/// that produced it and the program image. Returns a description of the
/// first violated invariant, if any.
fn check_report(
    id: &str,
    report: &ViolationReport,
    trap: &Trap,
    program: &hardbound_isa::Program,
) -> Result<(), String> {
    if report.trap != *trap {
        return Err(format!(
            "{id}: report trap {:?} != run trap {trap:?}",
            report.trap
        ));
    }
    if report.pc != trap.pc() {
        return Err(format!(
            "{id}: report pc {:?} != trap pc {:?}",
            report.pc,
            trap.pc()
        ));
    }
    let Trap::BoundsViolation {
        addr, base, bound, ..
    } = *trap
    else {
        return Ok(());
    };
    if report.addr != Some(addr) {
        return Err(format!("{id}: report addr {:?} != {addr:#x}", report.addr));
    }
    if report.bounds != Some((base, bound)) {
        return Err(format!(
            "{id}: report bounds {:?} != [{base:#x}, {bound:#x})",
            report.bounds
        ));
    }
    if report.oob != Some(ViolationReport::distance(addr, base, bound)) {
        return Err(format!("{id}: wrong oob distance {:?}", report.oob));
    }
    if report.window.is_empty() || !report.window.iter().any(|l| l.is_fault) {
        return Err(format!("{id}: code window missing the faulting line"));
    }
    // The heart of the feature: the provenance table must name a real
    // `setbound` site for software-created bounds.
    match report.origin {
        BoundsOrigin::Setbound { site, .. } => {
            let func = program.func(site.func);
            match func.insts.get(site.index as usize) {
                Some(Inst::SetBound { .. }) => Ok(()),
                other => Err(format!(
                    "{id}: blamed site {site} is {other:?}, not a setbound"
                )),
            }
        }
        BoundsOrigin::Region => Ok(()),
        BoundsOrigin::Unknown => Err(format!("{id}: bounds violation with unknown origin")),
    }
}

/// Runs the full corpus under full HardBound protection and validates the
/// forensics of every detected violation, on both report paths.
#[test]
fn corpus_reports_blame_the_setbound_site() {
    let mode = Mode::HardBound;
    let encoding = PointerEncoding::Intern4;
    let mut bounds_violations = 0usize;
    let mut setbound_origins = 0usize;
    let mut failures = Vec::new();
    for case in corpus() {
        let program = match compile(&case.bad_source, mode) {
            Ok(p) => p,
            Err(e) => {
                failures.push(format!("{}: compile error: {e}", case.id));
                continue;
            }
        };
        let config = machine_config(mode, encoding);
        // Path 1: the machine that actually trapped, flight recorder armed.
        let mut m = build_machine_with_config(program.clone(), mode, config.clone());
        m.enable_flight(16);
        let out = m.run();
        let Some(trap) = out.trap.clone() else {
            failures.push(format!("{}: violation not detected", case.id));
            continue;
        };
        let Some(report) = m.violation_report() else {
            failures.push(format!("{}: trapped but no report", case.id));
            continue;
        };
        if let Err(e) = check_report(&case.id, &report, &trap, &program) {
            failures.push(e);
            continue;
        }
        if matches!(trap, Trap::BoundsViolation { .. }) {
            bounds_violations += 1;
            // The armed recorder must have captured the faulting access
            // as its youngest event.
            match report.flight.last() {
                Some(last) if Some(last.addr) == report.addr && Some(last.pc) == report.pc => {}
                other => {
                    failures.push(format!(
                        "{}: flight tail {other:?} misses the fault",
                        case.id
                    ));
                    continue;
                }
            }
        }
        if matches!(report.origin, BoundsOrigin::Setbound { .. }) {
            setbound_origins += 1;
        }
        // Path 2: the runtime re-run wrapper must assign the same blame.
        let Some(rerun) = violation_report(program.clone(), mode, config) else {
            failures.push(format!("{}: runtime re-run produced no report", case.id));
            continue;
        };
        if rerun.trap != report.trap || rerun.pc != report.pc || rerun.origin != report.origin {
            failures.push(format!(
                "{}: re-run report disagrees ({:?} @ {:?} from {:?})",
                case.id, rerun.trap, rerun.pc, rerun.origin
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} forensics failures:\n{}",
        failures.len(),
        failures.join("\n")
    );
    // Full protection detects every case as a bounds violation, and every
    // one of them must be blamed on a concrete setbound site.
    assert_eq!(bounds_violations, corpus().len());
    assert_eq!(setbound_origins, corpus().len());
}
