//! Memory model for the HardBound simulator.
//!
//! Architecturally, HardBound extends *every word of memory* with a sidecar
//! `{base, bound}` pair and a pointer/non-pointer *tag* (paper §3.1, §4.1–
//! 4.2). This crate stores all three planes:
//!
//! * the **data plane** — a sparse, paged, byte-addressed 32-bit space,
//! * the **shadow plane** — one `(base, bound)` pair per aligned word,
//!   architecturally located at `SHADOW_SPACE_BASE + addr * 2` (interleaved
//!   so both words move in one double-word access, paper §4.1),
//! * the **tag plane** — the per-word tag metadata of §4.2/§4.3: either a
//!   1-bit pointer flag or a 4-bit compressed-size code depending on the
//!   active encoding.
//!
//! The planes are plain storage; *policy* (when tags are written, when the
//! shadow is consulted, what the tag values mean) lives in
//! `hardbound-core`. [`PageTouches`] tracks the distinct 4 KB virtual pages
//! touched in each plane, which is exactly the measurement behind the
//! paper's Figure 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod memory;
mod pages;

pub use memory::{Memory, WordMeta};
pub use pages::PageTouches;
