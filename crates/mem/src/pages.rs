use std::collections::HashSet;
use std::hash::{BuildHasherDefault, Hasher};

/// An identity hash for page numbers. Page numbers are already
/// well-distributed small integers; SipHash-ing each one showed up as
/// double-digit percent of whole-simulation profiles.
#[derive(Default)]
pub struct PageHasher(u64);

impl Hasher for PageHasher {
    fn finish(&self) -> u64 {
        // Spread low-entropy page numbers across hashbrown's bucket and
        // control bits (fibonacci multiply; one cycle).
        self.0.wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    fn write(&mut self, _: &[u8]) {
        unreachable!("page sets only hash u64 keys");
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

type PageSet = HashSet<u64, BuildHasherDefault<PageHasher>>;

/// Distinct-4 KB-page accounting for the three metadata planes.
///
/// The paper's Figure 6 reports "the number of additional distinct pages
/// touched, compared to the baseline C versions", split into tag metadata
/// and base/bound metadata. This type is the measurement instrument: the
/// machine records every page it touches in each plane, and the report
/// layer differences the counts against a baseline run.
#[derive(Clone, Debug)]
pub struct PageTouches {
    data: PageSet,
    tag: PageSet,
    shadow: PageSet,
    // One-entry caches: consecutive accesses overwhelmingly hit the same
    // page, and this tracker sits on the simulator's hot path.
    last_data: u64,
    last_tag: u64,
    last_shadow: u64,
}

impl Default for PageTouches {
    fn default() -> PageTouches {
        PageTouches::new()
    }
}

impl PageTouches {
    /// Creates an empty tracker.
    #[must_use]
    pub fn new() -> PageTouches {
        PageTouches {
            data: PageSet::default(),
            tag: PageSet::default(),
            shadow: PageSet::default(),
            last_data: u64::MAX,
            last_tag: u64::MAX,
            last_shadow: u64::MAX,
        }
    }

    /// Records a touch of the data-plane page containing byte `addr`.
    pub fn touch_data(&mut self, addr: u32) {
        let page = u64::from(addr) / 4096;
        if page != self.last_data {
            self.last_data = page;
            self.data.insert(page);
        }
    }

    /// Records a touch of a tag-plane page (conceptual 64-bit address).
    pub fn touch_tag(&mut self, conceptual_addr: u64) {
        let page = conceptual_addr / 4096;
        if page != self.last_tag {
            self.last_tag = page;
            self.tag.insert(page);
        }
    }

    /// Records a touch of a base/bound shadow-plane page (conceptual 64-bit
    /// address).
    pub fn touch_shadow(&mut self, conceptual_addr: u64) {
        let page = conceptual_addr / 4096;
        if page != self.last_shadow {
            self.last_shadow = page;
            self.shadow.insert(page);
        }
    }

    /// Number of distinct data pages touched.
    #[must_use]
    pub fn data_pages(&self) -> usize {
        self.data.len()
    }

    /// Number of distinct tag-metadata pages touched.
    #[must_use]
    pub fn tag_pages(&self) -> usize {
        self.tag.len()
    }

    /// Number of distinct base/bound shadow pages touched.
    #[must_use]
    pub fn shadow_pages(&self) -> usize {
        self.shadow.len()
    }

    /// Total distinct pages across all planes.
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.data_pages() + self.tag_pages() + self.shadow_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_deduplicate_within_plane() {
        let mut t = PageTouches::new();
        t.touch_data(0);
        t.touch_data(4095);
        t.touch_data(4096);
        assert_eq!(t.data_pages(), 2);
    }

    #[test]
    fn planes_are_independent() {
        let mut t = PageTouches::new();
        t.touch_data(0);
        t.touch_tag(0x3_0000_0000);
        t.touch_shadow(0x1_0000_0000);
        t.touch_shadow(0x1_0000_0008); // same page
        assert_eq!(t.data_pages(), 1);
        assert_eq!(t.tag_pages(), 1);
        assert_eq!(t.shadow_pages(), 1);
        assert_eq!(t.total_pages(), 3);
    }

    #[test]
    fn empty_tracker_reports_zero() {
        let t = PageTouches::new();
        assert_eq!(t.total_pages(), 0);
    }
}
