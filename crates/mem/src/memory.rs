/// Sidecar metadata of one aligned memory word: the architectural
/// `{base, bound}` pair of paper §3.1. `(0, 0)` denotes a non-pointer.
pub type WordMeta = (u32, u32);

const PAGE_BYTES: usize = 4096;
const WORDS_PER_PAGE: usize = PAGE_BYTES / 4;
const NUM_PAGES: usize = 1 << 20; // 2^32 / 4096

struct DataPage {
    bytes: Box<[u8; PAGE_BYTES]>,
}

struct MetaPage {
    /// `(base, bound)` per aligned word of the corresponding data page.
    shadow: Box<[WordMeta; WORDS_PER_PAGE]>,
    /// Raw tag value per aligned word (meaning assigned by the encoding:
    /// 0 = non-pointer; for the external 4-bit encoding 1–14 are compressed
    /// sizes and 15 is "uncompressed"; for 1-bit encodings only 0/1 are
    /// used).
    tags: Box<[u8; WORDS_PER_PAGE]>,
}

/// The simulator's sparse 32-bit memory with HardBound metadata planes.
///
/// Data is byte-addressed; metadata (tags and shadow `{base, bound}`) is
/// keyed by the *aligned word* containing an address, matching the paper's
/// per-word metadata granularity (§4.1–4.2). Unwritten memory reads as
/// zero / non-pointer, which mirrors demand-zero page allocation.
///
/// This type is pure storage: it never raises bounds errors and performs no
/// implicit tag updates — the machine in `hardbound-core` implements that
/// policy, including clearing tags on non-pointer stores.
pub struct Memory {
    pages: Vec<Option<DataPage>>,
    meta: Vec<Option<MetaPage>>,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mapped = self.pages.iter().filter(|p| p.is_some()).count();
        f.debug_struct("Memory")
            .field("mapped_pages", &mapped)
            .finish()
    }
}

impl Memory {
    /// Creates an empty (all-zero, all-non-pointer) memory.
    #[must_use]
    pub fn new() -> Memory {
        let mut pages = Vec::new();
        pages.resize_with(NUM_PAGES, || None);
        let mut meta = Vec::new();
        meta.resize_with(NUM_PAGES, || None);
        Memory { pages, meta }
    }

    fn page(&mut self, addr: u32) -> &mut DataPage {
        let idx = (addr as usize) / PAGE_BYTES;
        self.pages[idx].get_or_insert_with(|| DataPage {
            bytes: Box::new([0u8; PAGE_BYTES]),
        })
    }

    fn meta_page(&mut self, addr: u32) -> &mut MetaPage {
        let idx = (addr as usize) / PAGE_BYTES;
        self.meta[idx].get_or_insert_with(|| MetaPage {
            shadow: Box::new([(0, 0); WORDS_PER_PAGE]),
            tags: Box::new([0u8; WORDS_PER_PAGE]),
        })
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match &self.pages[(addr as usize) / PAGE_BYTES] {
            Some(p) => p.bytes[(addr as usize) % PAGE_BYTES],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let off = (addr as usize) % PAGE_BYTES;
        self.page(addr).bytes[off] = value;
    }

    /// Reads a little-endian 32-bit word starting at `addr` (any
    /// alignment; unaligned reads cross into the following bytes exactly as
    /// on x86).
    #[must_use]
    pub fn read_u32(&self, addr: u32) -> u32 {
        if addr as usize % PAGE_BYTES <= PAGE_BYTES - 4 {
            // Fast path: within one page.
            match &self.pages[(addr as usize) / PAGE_BYTES] {
                Some(p) => {
                    let off = (addr as usize) % PAGE_BYTES;
                    u32::from_le_bytes([
                        p.bytes[off],
                        p.bytes[off + 1],
                        p.bytes[off + 2],
                        p.bytes[off + 3],
                    ])
                }
                None => 0,
            }
        } else {
            let b = [
                self.read_u8(addr),
                self.read_u8(addr.wrapping_add(1)),
                self.read_u8(addr.wrapping_add(2)),
                self.read_u8(addr.wrapping_add(3)),
            ];
            u32::from_le_bytes(b)
        }
    }

    /// Writes a little-endian 32-bit word starting at `addr`.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let bytes = value.to_le_bytes();
        if addr as usize % PAGE_BYTES <= PAGE_BYTES - 4 {
            let off = (addr as usize) % PAGE_BYTES;
            let p = self.page(addr);
            p.bytes[off..off + 4].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *b);
            }
        }
    }

    /// Copies `bytes` into memory starting at `addr` (used by the loader
    /// for initialized data).
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    #[must_use]
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u32)))
            .collect()
    }

    /// Raw tag value of the aligned word containing `addr`.
    #[must_use]
    pub fn tag(&self, addr: u32) -> u8 {
        match &self.meta[(addr as usize) / PAGE_BYTES] {
            Some(m) => m.tags[((addr as usize) % PAGE_BYTES) / 4],
            None => 0,
        }
    }

    /// Sets the raw tag value of the aligned word containing `addr`.
    pub fn set_tag(&mut self, addr: u32, tag: u8) {
        let word = ((addr as usize) % PAGE_BYTES) / 4;
        // Avoid materializing a metadata page just to store the default.
        if tag == 0 && self.meta[(addr as usize) / PAGE_BYTES].is_none() {
            return;
        }
        self.meta_page(addr).tags[word] = tag;
    }

    /// Shadow `{base, bound}` of the aligned word containing `addr`.
    #[must_use]
    pub fn shadow(&self, addr: u32) -> WordMeta {
        match &self.meta[(addr as usize) / PAGE_BYTES] {
            Some(m) => m.shadow[((addr as usize) % PAGE_BYTES) / 4],
            None => (0, 0),
        }
    }

    /// Sets the shadow `{base, bound}` of the aligned word containing
    /// `addr`.
    pub fn set_shadow(&mut self, addr: u32, meta: WordMeta) {
        let word = ((addr as usize) % PAGE_BYTES) / 4;
        if meta == (0, 0) && self.meta[(addr as usize) / PAGE_BYTES].is_none() {
            return;
        }
        self.meta_page(addr).shadow[word] = meta;
    }

    /// Number of data pages actually materialized (diagnostic).
    #[must_use]
    pub fn mapped_data_pages(&self) -> usize {
        self.pages.iter().filter(|p| p.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0x1234), 0);
        assert_eq!(m.read_u32(0x1000_0000), 0);
        assert_eq!(m.tag(0x1000_0000), 0);
        assert_eq!(m.shadow(0x1000_0000), (0, 0));
    }

    #[test]
    fn byte_write_read_roundtrip() {
        let mut m = Memory::new();
        m.write_u8(0x4000_0003, 0xAB);
        assert_eq!(m.read_u8(0x4000_0003), 0xAB);
        assert_eq!(m.read_u8(0x4000_0002), 0);
    }

    #[test]
    fn word_is_little_endian_over_bytes() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 0x01);
        assert_eq!(m.read_u8(0x101), 0x02);
        assert_eq!(m.read_u8(0x102), 0x03);
        assert_eq!(m.read_u8(0x103), 0x04);
        assert_eq!(m.read_u32(0x100), 0x0403_0201);
    }

    #[test]
    fn unaligned_word_access_crosses_page_boundary() {
        let mut m = Memory::new();
        m.write_u32(0xFFE, 0xDDCC_BBAA);
        assert_eq!(m.read_u8(0xFFE), 0xAA);
        assert_eq!(m.read_u8(0xFFF), 0xBB);
        assert_eq!(m.read_u8(0x1000), 0xCC);
        assert_eq!(m.read_u8(0x1001), 0xDD);
        assert_eq!(m.read_u32(0xFFE), 0xDDCC_BBAA);
    }

    #[test]
    fn tags_are_per_aligned_word() {
        let mut m = Memory::new();
        m.set_tag(0x2000, 7);
        for byte in 0..4 {
            assert_eq!(m.tag(0x2000 + byte), 7);
        }
        assert_eq!(m.tag(0x2004), 0);
    }

    #[test]
    fn shadow_is_per_aligned_word() {
        let mut m = Memory::new();
        m.set_shadow(0x3001, (0x3000, 0x3010));
        assert_eq!(m.shadow(0x3000), (0x3000, 0x3010));
        assert_eq!(m.shadow(0x3003), (0x3000, 0x3010));
        assert_eq!(m.shadow(0x3004), (0, 0));
    }

    #[test]
    fn default_stores_do_not_materialize_meta_pages() {
        let mut m = Memory::new();
        m.set_tag(0x9000, 0);
        m.set_shadow(0x9000, (0, 0));
        assert_eq!(m.meta.iter().filter(|p| p.is_some()).count(), 0);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = Memory::new();
        let data = b"hello, hardbound";
        m.write_bytes(0x5000, data);
        assert_eq!(m.read_bytes(0x5000, data.len()), data);
    }

    #[test]
    fn mapped_page_accounting() {
        let mut m = Memory::new();
        assert_eq!(m.mapped_data_pages(), 0);
        m.write_u8(0, 1);
        m.write_u8(4096, 1);
        m.write_u8(4097, 1);
        assert_eq!(m.mapped_data_pages(), 2);
    }
}
