/// Sidecar metadata of one aligned memory word: the architectural
/// `{base, bound}` pair of paper §3.1. `(0, 0)` denotes a non-pointer.
pub type WordMeta = (u32, u32);

const PAGE_BYTES: usize = 4096;
const WORDS_PER_PAGE: usize = PAGE_BYTES / 4;
const NUM_PAGES: usize = 1 << 20; // 2^32 / 4096

/// Pages per second-level chunk of the page table. A flat page vector
/// would be 8 MB of `Option`s zeroed on every `Memory::new` — three orders
/// of magnitude more than any simulated program touches. The two-level
/// radix keeps construction at one small vector and allocates interior
/// chunks on demand.
const CHUNK_PAGES: usize = 1 << 10;
const NUM_CHUNKS: usize = NUM_PAGES / CHUNK_PAGES;

/// Metadata arrays of one page, allocated only once a tag or shadow entry
/// is actually written (most pages never hold a pointer).
struct MetaPlane {
    /// `(base, bound)` per aligned word of the page.
    shadow: Box<[WordMeta; WORDS_PER_PAGE]>,
    /// Raw tag value per aligned word (meaning assigned by the encoding:
    /// 0 = non-pointer; for the external 4-bit encoding 1–14 are compressed
    /// sizes and 15 is "uncompressed"; for 1-bit encodings only 0/1 are
    /// used).
    tags: Box<[u8; WORDS_PER_PAGE]>,
    /// Per-page summary: number of words with a nonzero tag. Maintained on
    /// every tag write, so "does this page hold any tagged word?" is one
    /// integer compare instead of a 1024-byte scan — the machine's
    /// metadata fast path keys off it.
    tag_words: u32,
    /// Per-page summary: number of words with a nonzero shadow
    /// `{base, bound}` entry.
    shadow_words: u32,
    /// Per-page summary: number of words whose tag marks an
    /// *uncompressed* pointer (tag ≥ 2 — the machine's `TAG_UNCOMPRESSED`;
    /// 0 is non-pointer, 1 a compressed pointer whose bounds live in the
    /// tag itself). Only uncompressed pointers ever touch the shadow
    /// space, so "no uncompressed word on this page" lets the machine's
    /// shadow fast path skip the Shadow hierarchy charge in O(1).
    uncompressed_words: u32,
}

impl MetaPlane {
    /// Writes `tags[word] = tag`, keeping the summary counts exact.
    #[inline]
    fn write_tag(&mut self, word: usize, tag: u8) {
        let old = self.tags[word];
        self.tag_words += u32::from(old == 0 && tag != 0);
        self.tag_words -= u32::from(old != 0 && tag == 0);
        self.uncompressed_words += u32::from(old < 2 && tag >= 2);
        self.uncompressed_words -= u32::from(old >= 2 && tag < 2);
        self.tags[word] = tag;
    }

    /// Writes `shadow[word] = meta`, keeping the summary count exact.
    #[inline]
    fn write_shadow(&mut self, word: usize, meta: WordMeta) {
        let old = self.shadow[word];
        self.shadow_words += u32::from(old == (0, 0) && meta != (0, 0));
        self.shadow_words -= u32::from(old != (0, 0) && meta == (0, 0));
        self.shadow[word] = meta;
    }
}

/// One 4 KB page: data bytes plus (lazily materialized) metadata planes.
/// Keeping the planes behind one page-table walk lets a tagged word load —
/// the HardBound machine's single hottest memory operation — resolve data
/// and tag with one lookup.
struct Page {
    bytes: Box<[u8; PAGE_BYTES]>,
    meta: Option<MetaPlane>,
}

impl Page {
    fn new() -> Page {
        Page {
            bytes: Box::new([0u8; PAGE_BYTES]),
            meta: None,
        }
    }

    fn meta_mut(&mut self) -> &mut MetaPlane {
        self.meta.get_or_insert_with(|| MetaPlane {
            shadow: Box::new([(0, 0); WORDS_PER_PAGE]),
            tags: Box::new([0u8; WORDS_PER_PAGE]),
            tag_words: 0,
            shadow_words: 0,
            uncompressed_words: 0,
        })
    }
}

type Chunk = Box<[Option<Page>; CHUNK_PAGES]>;

/// The simulator's sparse 32-bit memory with HardBound metadata planes.
///
/// Data is byte-addressed; metadata (tags and shadow `{base, bound}`) is
/// keyed by the *aligned word* containing an address, matching the paper's
/// per-word metadata granularity (§4.1–4.2). Unwritten memory reads as
/// zero / non-pointer, which mirrors demand-zero page allocation.
///
/// This type is pure storage: it never raises bounds errors and performs no
/// implicit tag updates — the machine in `hardbound-core` implements that
/// policy, including clearing tags on non-pointer stores.
pub struct Memory {
    chunks: Vec<Option<Chunk>>,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("mapped_pages", &self.mapped_data_pages())
            .finish()
    }
}

impl Memory {
    /// Creates an empty (all-zero, all-non-pointer) memory.
    #[must_use]
    pub fn new() -> Memory {
        let mut chunks = Vec::new();
        chunks.resize_with(NUM_CHUNKS, || None);
        Memory { chunks }
    }

    #[inline]
    fn page(&self, addr: u32) -> Option<&Page> {
        let idx = (addr as usize) / PAGE_BYTES;
        self.chunks[idx / CHUNK_PAGES].as_ref()?[idx % CHUNK_PAGES].as_ref()
    }

    #[inline]
    fn page_mut(&mut self, addr: u32) -> &mut Page {
        let idx = (addr as usize) / PAGE_BYTES;
        let chunk = self.chunks[idx / CHUNK_PAGES]
            .get_or_insert_with(|| Box::new(std::array::from_fn(|_| None)));
        chunk[idx % CHUNK_PAGES].get_or_insert_with(Page::new)
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.page(addr) {
            Some(p) => p.bytes[(addr as usize) % PAGE_BYTES],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        let off = (addr as usize) % PAGE_BYTES;
        self.page_mut(addr).bytes[off] = value;
    }

    /// Reads a little-endian 32-bit word starting at `addr` (any
    /// alignment; unaligned reads cross into the following bytes exactly as
    /// on x86).
    #[must_use]
    pub fn read_u32(&self, addr: u32) -> u32 {
        if addr as usize % PAGE_BYTES <= PAGE_BYTES - 4 {
            // Fast path: within one page.
            match self.page(addr) {
                Some(p) => {
                    let off = (addr as usize) % PAGE_BYTES;
                    u32::from_le_bytes([
                        p.bytes[off],
                        p.bytes[off + 1],
                        p.bytes[off + 2],
                        p.bytes[off + 3],
                    ])
                }
                None => 0,
            }
        } else {
            let b = [
                self.read_u8(addr),
                self.read_u8(addr.wrapping_add(1)),
                self.read_u8(addr.wrapping_add(2)),
                self.read_u8(addr.wrapping_add(3)),
            ];
            u32::from_le_bytes(b)
        }
    }

    /// Reads the aligned word containing `addr` together with its tag —
    /// one page-table walk instead of two.
    ///
    /// # Panics
    ///
    /// Debug-asserts 4-byte alignment.
    #[inline]
    #[must_use]
    pub fn read_word_tagged(&self, addr: u32) -> (u32, u8) {
        debug_assert!(addr % 4 == 0, "read_word_tagged wants aligned words");
        match self.page(addr) {
            Some(p) => {
                let off = (addr as usize) % PAGE_BYTES;
                let word = u32::from_le_bytes([
                    p.bytes[off],
                    p.bytes[off + 1],
                    p.bytes[off + 2],
                    p.bytes[off + 3],
                ]);
                let tag = match &p.meta {
                    Some(m) => m.tags[off / 4],
                    None => 0,
                };
                (word, tag)
            }
            None => (0, 0),
        }
    }

    /// Reads the aligned word containing `addr` together with its tag and
    /// shadow `{base, bound}` — one page-table walk for the pointer-load
    /// hot path (shadow reads as `(0, 0)` when no metadata exists).
    ///
    /// # Panics
    ///
    /// Debug-asserts 4-byte alignment.
    #[inline]
    #[must_use]
    pub fn read_word_full(&self, addr: u32) -> (u32, u8, WordMeta) {
        debug_assert!(addr % 4 == 0, "read_word_full wants aligned words");
        match self.page(addr) {
            Some(p) => {
                let off = (addr as usize) % PAGE_BYTES;
                let word = u32::from_le_bytes([
                    p.bytes[off],
                    p.bytes[off + 1],
                    p.bytes[off + 2],
                    p.bytes[off + 3],
                ]);
                match &p.meta {
                    Some(m) => (word, m.tags[off / 4], m.shadow[off / 4]),
                    None => (word, 0, (0, 0)),
                }
            }
            None => (0, 0, (0, 0)),
        }
    }

    /// Writes the aligned word containing `addr` and sets its tag in one
    /// page-table walk (`tag == 0` never materializes metadata arrays).
    ///
    /// # Panics
    ///
    /// Debug-asserts 4-byte alignment.
    #[inline]
    pub fn write_word_tagged(&mut self, addr: u32, value: u32, tag: u8) {
        debug_assert!(addr % 4 == 0, "write_word_tagged wants aligned words");
        let off = (addr as usize) % PAGE_BYTES;
        let page = self.page_mut(addr);
        page.bytes[off..off + 4].copy_from_slice(&value.to_le_bytes());
        if let Some(m) = &mut page.meta {
            m.write_tag(off / 4, tag);
        } else if tag != 0 {
            page.meta_mut().write_tag(off / 4, tag);
        }
    }

    /// Writes an aligned pointer word: value, tag, and shadow `{base,
    /// bound}` in one page-table walk.
    ///
    /// # Panics
    ///
    /// Debug-asserts 4-byte alignment.
    #[inline]
    pub fn write_word_pointer(&mut self, addr: u32, value: u32, tag: u8, shadow: WordMeta) {
        debug_assert!(addr % 4 == 0, "write_word_pointer wants aligned words");
        let off = (addr as usize) % PAGE_BYTES;
        let page = self.page_mut(addr);
        page.bytes[off..off + 4].copy_from_slice(&value.to_le_bytes());
        let meta = page.meta_mut();
        meta.write_tag(off / 4, tag);
        meta.write_shadow(off / 4, shadow);
    }

    /// Writes a little-endian 32-bit word starting at `addr`.
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        let bytes = value.to_le_bytes();
        if addr as usize % PAGE_BYTES <= PAGE_BYTES - 4 {
            let off = (addr as usize) % PAGE_BYTES;
            let p = self.page_mut(addr);
            p.bytes[off..off + 4].copy_from_slice(&bytes);
        } else {
            for (i, b) in bytes.iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *b);
            }
        }
    }

    /// Copies `bytes` into memory starting at `addr` (used by the loader
    /// for initialized data).
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) {
        for (i, b) in bytes.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Reads `len` bytes starting at `addr`.
    #[must_use]
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u32)))
            .collect()
    }

    /// Raw tag value of the aligned word containing `addr`.
    #[must_use]
    pub fn tag(&self, addr: u32) -> u8 {
        match self.page(addr).and_then(|p| p.meta.as_ref()) {
            Some(m) => m.tags[((addr as usize) % PAGE_BYTES) / 4],
            None => 0,
        }
    }

    /// Sets the raw tag value of the aligned word containing `addr`.
    pub fn set_tag(&mut self, addr: u32, tag: u8) {
        let word = ((addr as usize) % PAGE_BYTES) / 4;
        // Avoid materializing metadata arrays just to store the default.
        if tag == 0 && self.page(addr).is_none_or(|p| p.meta.is_none()) {
            return;
        }
        self.page_mut(addr).meta_mut().write_tag(word, tag);
    }

    /// Shadow `{base, bound}` of the aligned word containing `addr`.
    #[must_use]
    pub fn shadow(&self, addr: u32) -> WordMeta {
        match self.page(addr).and_then(|p| p.meta.as_ref()) {
            Some(m) => m.shadow[((addr as usize) % PAGE_BYTES) / 4],
            None => (0, 0),
        }
    }

    /// Sets the shadow `{base, bound}` of the aligned word containing
    /// `addr`.
    pub fn set_shadow(&mut self, addr: u32, meta: WordMeta) {
        let word = ((addr as usize) % PAGE_BYTES) / 4;
        if meta == (0, 0) && self.page(addr).is_none_or(|p| p.meta.is_none()) {
            return;
        }
        self.page_mut(addr).meta_mut().write_shadow(word, meta);
    }

    /// Number of words with a nonzero tag on the 4 KB page containing
    /// `addr`, from the maintained per-page summary.
    #[must_use]
    pub fn page_tag_words(&self, addr: u32) -> u32 {
        match self.page(addr).and_then(|p| p.meta.as_ref()) {
            Some(m) => m.tag_words,
            None => 0,
        }
    }

    /// Number of words with a nonzero shadow `{base, bound}` entry on the
    /// 4 KB page containing `addr`, from the maintained per-page summary.
    #[must_use]
    pub fn page_shadow_words(&self, addr: u32) -> u32 {
        match self.page(addr).and_then(|p| p.meta.as_ref()) {
            Some(m) => m.shadow_words,
            None => 0,
        }
    }

    /// Whether no word on the 4 KB page containing `addr` carries a tag —
    /// the metadata fast path's skip predicate, answered from the
    /// maintained summary in O(1).
    #[inline]
    #[must_use]
    pub fn page_tag_free(&self, addr: u32) -> bool {
        self.page_tag_words(addr) == 0
    }

    /// [`Memory::page_tag_free`] computed the unsummarized way: by walking
    /// the page's tag plane. This is the reference implementation the
    /// summary is held byte-identical to (the identity proptests compare
    /// whole-run statistics between the two), and the only other exact way
    /// to answer the question — a page whose metadata arrays exist but
    /// whose tags were all cleared back to zero *is* tag-free.
    #[must_use]
    pub fn page_tag_free_walk(&self, addr: u32) -> bool {
        match self.page(addr).and_then(|p| p.meta.as_ref()) {
            Some(m) => m.tags.iter().all(|&t| t == 0),
            None => true,
        }
    }

    /// Number of words tagged as uncompressed pointers (tag ≥ 2) on the
    /// 4 KB page containing `addr`, from the maintained per-page summary.
    #[must_use]
    pub fn page_uncompressed_words(&self, addr: u32) -> u32 {
        match self.page(addr).and_then(|p| p.meta.as_ref()) {
            Some(m) => m.uncompressed_words,
            None => 0,
        }
    }

    /// Whether no word on the 4 KB page containing `addr` is tagged as an
    /// uncompressed pointer — the page is "compressed-only", so its shadow
    /// `{base, bound}` plane is never consulted and the machine's shadow
    /// fast path may skip the Shadow hierarchy charge. Answered from the
    /// maintained summary in O(1).
    #[inline]
    #[must_use]
    pub fn page_uncompressed_free(&self, addr: u32) -> bool {
        self.page_uncompressed_words(addr) == 0
    }

    /// [`Memory::page_uncompressed_free`] computed the unsummarized way:
    /// by walking the page's tag plane. The reference implementation the
    /// summary is differenced against.
    #[must_use]
    pub fn page_uncompressed_free_walk(&self, addr: u32) -> bool {
        match self.page(addr).and_then(|p| p.meta.as_ref()) {
            Some(m) => m.tags.iter().all(|&t| t < 2),
            None => true,
        }
    }

    /// Number of data pages actually materialized (diagnostic).
    #[must_use]
    pub fn mapped_data_pages(&self) -> usize {
        self.chunks
            .iter()
            .flatten()
            .map(|chunk| chunk.iter().filter(|p| p.is_some()).count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_memory_reads_zero() {
        let m = Memory::new();
        assert_eq!(m.read_u8(0x1234), 0);
        assert_eq!(m.read_u32(0x1000_0000), 0);
        assert_eq!(m.tag(0x1000_0000), 0);
        assert_eq!(m.shadow(0x1000_0000), (0, 0));
        assert_eq!(m.read_word_tagged(0x1000_0000), (0, 0));
    }

    #[test]
    fn byte_write_read_roundtrip() {
        let mut m = Memory::new();
        m.write_u8(0x4000_0003, 0xAB);
        assert_eq!(m.read_u8(0x4000_0003), 0xAB);
        assert_eq!(m.read_u8(0x4000_0002), 0);
    }

    #[test]
    fn word_is_little_endian_over_bytes() {
        let mut m = Memory::new();
        m.write_u32(0x100, 0x0403_0201);
        assert_eq!(m.read_u8(0x100), 0x01);
        assert_eq!(m.read_u8(0x101), 0x02);
        assert_eq!(m.read_u8(0x102), 0x03);
        assert_eq!(m.read_u8(0x103), 0x04);
        assert_eq!(m.read_u32(0x100), 0x0403_0201);
    }

    #[test]
    fn unaligned_word_access_crosses_page_boundary() {
        let mut m = Memory::new();
        m.write_u32(0xFFE, 0xDDCC_BBAA);
        assert_eq!(m.read_u8(0xFFE), 0xAA);
        assert_eq!(m.read_u8(0xFFF), 0xBB);
        assert_eq!(m.read_u8(0x1000), 0xCC);
        assert_eq!(m.read_u8(0x1001), 0xDD);
        assert_eq!(m.read_u32(0xFFE), 0xDDCC_BBAA);
    }

    #[test]
    fn tags_are_per_aligned_word() {
        let mut m = Memory::new();
        m.set_tag(0x2000, 7);
        for byte in 0..4 {
            assert_eq!(m.tag(0x2000 + byte), 7);
        }
        assert_eq!(m.tag(0x2004), 0);
    }

    #[test]
    fn shadow_is_per_aligned_word() {
        let mut m = Memory::new();
        m.set_shadow(0x3001, (0x3000, 0x3010));
        assert_eq!(m.shadow(0x3000), (0x3000, 0x3010));
        assert_eq!(m.shadow(0x3003), (0x3000, 0x3010));
        assert_eq!(m.shadow(0x3004), (0, 0));
    }

    #[test]
    fn default_stores_do_not_materialize_meta_pages() {
        let mut m = Memory::new();
        m.set_tag(0x9000, 0);
        m.set_shadow(0x9000, (0, 0));
        assert_eq!(m.mapped_data_pages(), 0);
        // Even on a data-mapped page, default metadata stays lazy.
        m.write_u8(0x9000, 1);
        m.set_tag(0x9000, 0);
        assert!(m.page(0x9000).unwrap().meta.is_none());
    }

    #[test]
    fn combined_word_apis_match_the_granular_ones() {
        let mut m = Memory::new();
        m.write_word_tagged(0x5000, 0xDEAD_BEEF, 0);
        assert_eq!(m.read_word_tagged(0x5000), (0xDEAD_BEEF, 0));
        assert_eq!(m.read_u32(0x5000), 0xDEAD_BEEF);

        m.write_word_pointer(0x5004, 0x0100_0000, 2, (0x0100_0000, 0x0100_0040));
        assert_eq!(m.read_word_tagged(0x5004), (0x0100_0000, 2));
        assert_eq!(m.tag(0x5004), 2);
        assert_eq!(m.shadow(0x5004), (0x0100_0000, 0x0100_0040));

        // Tagged write over a pointer clears via the same path set_tag uses.
        m.write_word_tagged(0x5004, 7, 0);
        assert_eq!(m.read_word_tagged(0x5004), (7, 0));
        assert_eq!(
            m.shadow(0x5004),
            (0x0100_0000, 0x0100_0040),
            "shadow is stale but tag gates it"
        );
    }

    #[test]
    fn page_summaries_track_tag_and_shadow_counts() {
        let mut m = Memory::new();
        assert!(m.page_tag_free(0x7000));
        assert!(m.page_tag_free_walk(0x7000));
        assert_eq!(m.page_tag_words(0x7000), 0);

        m.set_tag(0x7000, 2);
        m.set_tag(0x7004, 1);
        m.set_tag(0x7004, 3); // overwrite: count unchanged
        assert_eq!(m.page_tag_words(0x7000), 2);
        assert!(!m.page_tag_free(0x7123));
        assert!(!m.page_tag_free_walk(0x7123));
        assert!(m.page_tag_free(0x8000), "other pages unaffected");

        m.set_shadow(0x7000, (0x7000, 0x7010));
        assert_eq!(m.page_shadow_words(0x7000), 1);
        m.set_shadow(0x7000, (0, 0));
        assert_eq!(m.page_shadow_words(0x7000), 0);

        // Clearing every tag makes the materialized page tag-free again —
        // and the summary must agree with the walk.
        m.set_tag(0x7000, 0);
        m.set_tag(0x7004, 0);
        assert_eq!(m.page_tag_words(0x7000), 0);
        assert!(m.page_tag_free(0x7000));
        assert!(m.page_tag_free_walk(0x7000));
    }

    #[test]
    fn combined_write_apis_keep_summaries_exact() {
        let mut m = Memory::new();
        m.write_word_pointer(0x9000, 0x0100_0000, 2, (0x0100_0000, 0x0100_0040));
        assert_eq!(m.page_tag_words(0x9000), 1);
        assert_eq!(m.page_shadow_words(0x9000), 1);

        // Tagged write of 0 over the pointer clears the tag (shadow stays
        // stale by design, gated by the tag).
        m.write_word_tagged(0x9000, 7, 0);
        assert_eq!(m.page_tag_words(0x9000), 0);
        assert_eq!(m.page_shadow_words(0x9000), 1);
        assert!(m.page_tag_free(0x9000));
        assert!(m.page_tag_free_walk(0x9000));

        // A tagged write on a page with no metadata arrays materializes
        // them only for nonzero tags, counting exactly once.
        m.write_word_tagged(0xA000, 1, 0);
        assert_eq!(m.page_tag_words(0xA000), 0);
        m.write_word_tagged(0xA004, 2, 5);
        assert_eq!(m.page_tag_words(0xA000), 1);
    }

    #[test]
    fn uncompressed_summary_tracks_tag_transitions() {
        let mut m = Memory::new();
        assert!(m.page_uncompressed_free(0xB000));
        assert!(m.page_uncompressed_free_walk(0xB000));

        // Compressed pointers (tag 1) never count.
        m.set_tag(0xB000, 1);
        assert_eq!(m.page_uncompressed_words(0xB000), 0);
        assert!(m.page_uncompressed_free(0xB000));
        assert!(m.page_uncompressed_free_walk(0xB000));

        // Uncompressed (tag 2) counts; transitions in every direction
        // keep the summary exact and agreeing with the walk.
        m.set_tag(0xB004, 2);
        assert_eq!(m.page_uncompressed_words(0xB000), 1);
        assert!(!m.page_uncompressed_free(0xB123));
        assert!(!m.page_uncompressed_free_walk(0xB123));
        m.set_tag(0xB000, 2); // compressed -> uncompressed
        assert_eq!(m.page_uncompressed_words(0xB000), 2);
        m.set_tag(0xB004, 1); // uncompressed -> compressed
        assert_eq!(m.page_uncompressed_words(0xB000), 1);
        m.set_tag(0xB000, 0); // uncompressed -> none
        assert_eq!(m.page_uncompressed_words(0xB000), 0);
        assert!(m.page_uncompressed_free(0xB000));
        assert!(m.page_uncompressed_free_walk(0xB000));
        assert_eq!(
            m.page_uncompressed_words(0xC000),
            0,
            "other pages untouched"
        );

        // The combined pointer-write API maintains it too.
        m.write_word_pointer(0xB008, 0x0100_0000, 2, (0x0100_0000, 0x0100_0040));
        assert_eq!(m.page_uncompressed_words(0xB000), 1);
        m.write_word_tagged(0xB008, 0, 0);
        assert_eq!(m.page_uncompressed_words(0xB000), 0);
    }

    #[test]
    fn bulk_bytes_roundtrip() {
        let mut m = Memory::new();
        let data = b"hello, hardbound";
        m.write_bytes(0x5000, data);
        assert_eq!(m.read_bytes(0x5000, data.len()), data);
    }

    #[test]
    fn mapped_page_accounting() {
        let mut m = Memory::new();
        assert_eq!(m.mapped_data_pages(), 0);
        m.write_u8(0, 1);
        m.write_u8(4096, 1);
        m.write_u8(4097, 1);
        assert_eq!(m.mapped_data_pages(), 2);
    }
}
