//! Property tests: `Memory` must agree with a trivial reference model.

use std::collections::HashMap;

use hardbound_mem::Memory;
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    WriteByte(u32, u8),
    WriteWord(u32, u32),
    SetTag(u32, u8),
    SetShadow(u32, u32, u32),
    WriteWordTagged(u32, u32, u8),
    WriteWordPointer(u32, u32, u8, u32, u32),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // Confine addresses to a few pages so operations actually collide.
    let addr = prop_oneof![
        0u32..0x3000,
        0x0FFC_u32..0x1004,
        0x1000_0000u32..0x1000_0100
    ];
    let word_addr = addr.clone().prop_map(|a| a & !3);
    prop_oneof![
        (addr.clone(), any::<u8>()).prop_map(|(a, v)| Op::WriteByte(a, v)),
        (addr.clone(), any::<u32>()).prop_map(|(a, v)| Op::WriteWord(a, v)),
        (addr.clone(), 0u8..16).prop_map(|(a, t)| Op::SetTag(a, t)),
        (addr, any::<u32>(), any::<u32>()).prop_map(|(a, b, d)| Op::SetShadow(a, b, d)),
        (word_addr.clone(), any::<u32>(), 0u8..3)
            .prop_map(|(a, v, t)| Op::WriteWordTagged(a, v, t)),
        (word_addr, any::<u32>(), 1u8..3, any::<u32>(), any::<u32>())
            .prop_map(|(a, v, t, b, d)| Op::WriteWordPointer(a, v, t, b, d)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn memory_matches_reference(ops in prop::collection::vec(op_strategy(), 1..200)) {
        let mut mem = Memory::new();
        let mut ref_bytes: HashMap<u32, u8> = HashMap::new();
        let mut ref_tags: HashMap<u32, u8> = HashMap::new();
        let mut ref_shadow: HashMap<u32, (u32, u32)> = HashMap::new();

        for op in &ops {
            match *op {
                Op::WriteByte(a, v) => {
                    mem.write_u8(a, v);
                    ref_bytes.insert(a, v);
                }
                Op::WriteWord(a, v) => {
                    mem.write_u32(a, v);
                    for (i, b) in v.to_le_bytes().iter().enumerate() {
                        ref_bytes.insert(a.wrapping_add(i as u32), *b);
                    }
                }
                Op::SetTag(a, t) => {
                    mem.set_tag(a, t);
                    ref_tags.insert(a & !3, t);
                }
                Op::SetShadow(a, b, d) => {
                    mem.set_shadow(a, (b, d));
                    ref_shadow.insert(a & !3, (b, d));
                }
                Op::WriteWordTagged(a, v, t) => {
                    mem.write_word_tagged(a, v, t);
                    for (i, b) in v.to_le_bytes().iter().enumerate() {
                        ref_bytes.insert(a + i as u32, *b);
                    }
                    ref_tags.insert(a, t);
                }
                Op::WriteWordPointer(a, v, t, b, d) => {
                    mem.write_word_pointer(a, v, t, (b, d));
                    for (i, byte) in v.to_le_bytes().iter().enumerate() {
                        ref_bytes.insert(a + i as u32, *byte);
                    }
                    ref_tags.insert(a, t);
                    ref_shadow.insert(a, (b, d));
                }
            }
        }

        for (&a, &v) in &ref_bytes {
            prop_assert_eq!(mem.read_u8(a), v);
        }
        for (&a, &t) in &ref_tags {
            prop_assert_eq!(mem.tag(a), t);
            prop_assert_eq!(mem.tag(a + 3), t);
        }
        for (&a, &s) in &ref_shadow {
            prop_assert_eq!(mem.shadow(a), s);
        }

        // The per-page summaries must agree with a from-scratch scan of the
        // reference model — counts exact, tag-freeness identical to the
        // unsummarized walk.
        let mut tag_count: HashMap<u32, u32> = HashMap::new();
        for (&a, &t) in &ref_tags {
            if t != 0 {
                *tag_count.entry(a / 4096).or_insert(0) += 1;
            }
        }
        let mut shadow_count: HashMap<u32, u32> = HashMap::new();
        for (&a, &s) in &ref_shadow {
            if s != (0, 0) {
                *shadow_count.entry(a / 4096).or_insert(0) += 1;
            }
        }
        let pages: std::collections::HashSet<u32> = ref_bytes
            .keys()
            .chain(ref_tags.keys())
            .chain(ref_shadow.keys())
            .map(|a| a / 4096)
            .collect();
        for &page in &pages {
            let a = page * 4096;
            let want_tags = tag_count.get(&page).copied().unwrap_or(0);
            let want_shadow = shadow_count.get(&page).copied().unwrap_or(0);
            prop_assert_eq!(mem.page_tag_words(a), want_tags, "page {:#x}", a);
            prop_assert_eq!(mem.page_shadow_words(a), want_shadow, "page {:#x}", a);
            prop_assert_eq!(mem.page_tag_free(a), want_tags == 0, "page {:#x}", a);
            prop_assert_eq!(
                mem.page_tag_free(a),
                mem.page_tag_free_walk(a),
                "summary vs walk on page {:#x}",
                a
            );
        }
    }

    #[test]
    fn word_read_composes_byte_reads(addr in 0u32..0x2000, value in any::<u32>()) {
        let mut mem = Memory::new();
        mem.write_u32(addr, value);
        let composed = u32::from_le_bytes([
            mem.read_u8(addr),
            mem.read_u8(addr + 1),
            mem.read_u8(addr + 2),
            mem.read_u8(addr + 3),
        ]);
        prop_assert_eq!(composed, value);
        prop_assert_eq!(mem.read_u32(addr), value);
    }
}
