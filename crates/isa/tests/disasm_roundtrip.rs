//! Golden and generative round-trip tests for the disassembler/assembler
//! pair: `parse_inst(inst.to_string())` must reproduce the instruction
//! exactly, and a golden listing pins the concrete text so the rendering
//! cannot drift silently.

use hardbound_isa::fuzz::{insts, FuzzRng};
use hardbound_isa::{parse_inst, parse_listing, BinOp, CmpOp, FuncId, Inst, Operand, Reg, Width};

/// The golden listing: one line per instruction variant, exactly as the
/// disassembler renders it today. Changing `Display` output must break this
/// test, forcing the assembler (and any downstream golden files) to move in
/// lockstep.
const GOLDEN: &[(&str, Inst)] = &[
    (
        "li    a0, 0xdeadbeef",
        Inst::Li {
            rd: Reg::A0,
            imm: 0xdead_beef,
        },
    ),
    (
        "mov   t2, sp",
        Inst::Mov {
            rd: Reg::T2,
            rs: Reg::SP,
        },
    ),
    (
        "add   a0, a1, a2",
        Inst::Bin {
            op: BinOp::Add,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Operand::Reg(Reg::A2),
        },
    ),
    (
        "sra   t0, t1, -3",
        Inst::Bin {
            op: BinOp::Sra,
            rd: Reg::T0,
            rs1: Reg::T1,
            rs2: Operand::Imm(-3),
        },
    ),
    (
        "cltu  a0, a1, 3",
        Inst::Cmp {
            op: CmpOp::LtU,
            rd: Reg::A0,
            rs1: Reg::A1,
            rs2: Operand::Imm(3),
        },
    ),
    (
        "lw    a2, [a0+8]",
        Inst::Load {
            width: Width::Word,
            rd: Reg::A2,
            addr: Reg::A0,
            offset: 8,
        },
    ),
    (
        "lb    zero, [gp+0]",
        Inst::Load {
            width: Width::Byte,
            rd: Reg::ZERO,
            addr: Reg::GP,
            offset: 0,
        },
    ),
    (
        "sb    [a0-4], a2",
        Inst::Store {
            width: Width::Byte,
            src: Reg::A2,
            addr: Reg::A0,
            offset: -4,
        },
    ),
    (
        "sw    [fp-12], t0",
        Inst::Store {
            width: Width::Word,
            src: Reg::T0,
            addr: Reg::FP,
            offset: -12,
        },
    ),
    (
        "setbound a0, a0, 16",
        Inst::SetBound {
            rd: Reg::A0,
            rs: Reg::A0,
            size: Operand::Imm(16),
        },
    ),
    (
        "unbound a1, a0",
        Inst::Unbound {
            rd: Reg::A1,
            rs: Reg::A0,
        },
    ),
    (
        "codeptr a0, fn#3",
        Inst::CodePtr {
            rd: Reg::A0,
            func: FuncId(3),
        },
    ),
    (
        "readbase a1, a0",
        Inst::ReadBase {
            rd: Reg::A1,
            rs: Reg::A0,
        },
    ),
    (
        "readbound a1, a0",
        Inst::ReadBound {
            rd: Reg::A1,
            rs: Reg::A0,
        },
    ),
    (
        "bgeu  a0, t1 -> 42",
        Inst::Branch {
            op: CmpOp::GeU,
            rs1: Reg::A0,
            rs2: Operand::Reg(Reg::T1),
            target: 42,
        },
    ),
    (
        "beq   a0, 0 -> 7",
        Inst::Branch {
            op: CmpOp::Eq,
            rs1: Reg::A0,
            rs2: Operand::Imm(0),
            target: 7,
        },
    ),
    ("jmp   -> 9", Inst::Jump { target: 9 }),
    ("call  fn#2", Inst::Call { func: FuncId(2) }),
    ("calli t1", Inst::CallInd { rs: Reg::T1 }),
    ("ret", Inst::Ret),
    (
        "sys   halt",
        Inst::Sys {
            call: hardbound_isa::SysCall::Halt,
        },
    ),
    (
        "sys   ot_check_arith",
        Inst::Sys {
            call: hardbound_isa::SysCall::OtCheckArith,
        },
    ),
    ("nop", Inst::Nop),
];

#[test]
fn golden_listing_renders_exactly() {
    for (text, inst) in GOLDEN {
        assert_eq!(&inst.to_string(), text, "disassembly drifted for {inst:?}");
    }
}

#[test]
fn golden_listing_reassembles_exactly() {
    for (text, inst) in GOLDEN {
        assert_eq!(
            &parse_inst(text).unwrap(),
            inst,
            "assembly drifted for {text:?}"
        );
    }
}

#[test]
fn golden_listing_parses_as_a_unit() {
    let listing: String = GOLDEN
        .iter()
        .map(|(text, _)| format!("  {text}\n"))
        .collect();
    let commented = format!("; golden listing\n\n{listing}");
    let parsed = parse_listing(&commented).expect("golden listing must assemble");
    let expected: Vec<Inst> = GOLDEN.iter().map(|&(_, inst)| inst).collect();
    assert_eq!(parsed, expected);
}

/// The generative half: for many seeds, every random instruction must
/// survive disassemble → reassemble with an identical encoding.
#[test]
fn random_instructions_roundtrip() {
    for seed in 0..32u64 {
        for inst in insts(seed, 512) {
            let text = inst.to_string();
            let back = parse_inst(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: unparseable disassembly {text:?}: {e}"));
            assert_eq!(back, inst, "seed {seed}: round trip diverged via {text:?}");
        }
    }
}

/// `Program::disassemble` output (function headers + indexed instruction
/// lines, the exact `hbrun --disasm` format) parses back to the program's
/// instruction stream with no preprocessing.
#[test]
fn program_disassembly_roundtrips() {
    use hardbound_isa::{FunctionBuilder, Program};

    let mut f = FunctionBuilder::new("main", 0);
    f.li(Reg::A0, 0x1000);
    f.setbound_imm(Reg::A0, Reg::A0, 4);
    f.load(Width::Word, Reg::A1, Reg::A0, 0);
    f.halt();
    let program = Program::with_entry(vec![f.finish()]);

    let parsed = parse_listing(&program.disassemble()).expect("disassembly assembles");
    let expected: Vec<Inst> = program
        .functions
        .iter()
        .flat_map(|f| f.insts.clone())
        .collect();
    assert_eq!(parsed, expected);
}

/// Whole random listings round-trip through the multi-line parser too.
#[test]
fn random_listings_roundtrip() {
    let mut rng = FuzzRng::new(0xB0B);
    for _ in 0..16 {
        let block: Vec<Inst> = (0..rng.below(64) + 1).map(|_| rng.inst()).collect();
        let text: String = block.iter().map(|i| format!("{i}\n")).collect();
        assert_eq!(parse_listing(&text).expect("listing assembles"), block);
    }
}
