//! The assembler: parses the disassembler's textual rendering back into
//! [`Inst`] values, so `parse_inst(inst.to_string()) == inst` for every
//! instruction. The golden round-trip suite in `tests/disasm_roundtrip.rs`
//! holds the two directions together.

use std::fmt;

use crate::inst::{BinOp, CmpOp, Inst, Operand, SysCall, Width};
use crate::program::{FuncId, Function, Program};
use crate::reg::Reg;

/// Why a line of assembly failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// The offending line, verbatim.
    pub line: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot assemble {:?}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: &str, message: impl Into<String>) -> AsmError {
    AsmError {
        line: line.to_owned(),
        message: message.into(),
    }
}

/// Parses one disassembled instruction line.
///
/// Accepts exactly the grammar the `Display` impls emit (mnemonic, comma
/// separated operands, `[reg+offset]` memory operands, `-> target` branch
/// destinations, `fn#N` function references), with arbitrary whitespace
/// between tokens.
///
/// # Errors
///
/// Returns [`AsmError`] on an unknown mnemonic, a malformed operand, or a
/// wrong operand count.
pub fn parse_inst(line: &str) -> Result<Inst, AsmError> {
    let text = line.trim();
    let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
        Some((m, r)) => (m, r.trim()),
        None => (text, ""),
    };
    if mnemonic.is_empty() {
        return Err(err(line, "empty line"));
    }

    let ops: Vec<&str> = if rest.is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(str::trim).collect()
    };

    let want = |n: usize| -> Result<(), AsmError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                line,
                format!("expected {n} operands, found {}", ops.len()),
            ))
        }
    };

    if let Some(op) = parse_binop(mnemonic) {
        want(3)?;
        return Ok(Inst::Bin {
            op,
            rd: parse_reg(line, ops[0])?,
            rs1: parse_reg(line, ops[1])?,
            rs2: parse_operand(line, ops[2])?,
        });
    }
    if let Some(op) = mnemonic.strip_prefix('c').and_then(parse_cmpop) {
        want(3)?;
        return Ok(Inst::Cmp {
            op,
            rd: parse_reg(line, ops[0])?,
            rs1: parse_reg(line, ops[1])?,
            rs2: parse_operand(line, ops[2])?,
        });
    }
    if let Some(op) = mnemonic.strip_prefix('b').and_then(parse_cmpop) {
        want(2)?;
        let (rs2, target) = parse_arrow(line, ops[1])?;
        return Ok(Inst::Branch {
            op,
            rs1: parse_reg(line, ops[0])?,
            rs2,
            target,
        });
    }

    match mnemonic {
        "li" => {
            want(2)?;
            Ok(Inst::Li {
                rd: parse_reg(line, ops[0])?,
                imm: parse_u32(line, ops[1])?,
            })
        }
        "mov" => {
            want(2)?;
            Ok(Inst::Mov {
                rd: parse_reg(line, ops[0])?,
                rs: parse_reg(line, ops[1])?,
            })
        }
        "lb" | "lw" => {
            want(2)?;
            let width = if mnemonic == "lb" {
                Width::Byte
            } else {
                Width::Word
            };
            let (addr, offset) = parse_mem(line, ops[1])?;
            Ok(Inst::Load {
                width,
                rd: parse_reg(line, ops[0])?,
                addr,
                offset,
            })
        }
        "sb" | "sw" => {
            want(2)?;
            let width = if mnemonic == "sb" {
                Width::Byte
            } else {
                Width::Word
            };
            let (addr, offset) = parse_mem(line, ops[0])?;
            Ok(Inst::Store {
                width,
                src: parse_reg(line, ops[1])?,
                addr,
                offset,
            })
        }
        "setbound" => {
            want(3)?;
            Ok(Inst::SetBound {
                rd: parse_reg(line, ops[0])?,
                rs: parse_reg(line, ops[1])?,
                size: parse_operand(line, ops[2])?,
            })
        }
        "unbound" => {
            want(2)?;
            Ok(Inst::Unbound {
                rd: parse_reg(line, ops[0])?,
                rs: parse_reg(line, ops[1])?,
            })
        }
        "codeptr" => {
            want(2)?;
            Ok(Inst::CodePtr {
                rd: parse_reg(line, ops[0])?,
                func: parse_func(line, ops[1])?,
            })
        }
        "readbase" => {
            want(2)?;
            Ok(Inst::ReadBase {
                rd: parse_reg(line, ops[0])?,
                rs: parse_reg(line, ops[1])?,
            })
        }
        "readbound" => {
            want(2)?;
            Ok(Inst::ReadBound {
                rd: parse_reg(line, ops[0])?,
                rs: parse_reg(line, ops[1])?,
            })
        }
        "jmp" => {
            want(1)?;
            let target = ops[0]
                .strip_prefix("->")
                .map(str::trim)
                .ok_or_else(|| err(line, "jmp needs a `-> target`"))?;
            Ok(Inst::Jump {
                target: parse_u32(line, target)?,
            })
        }
        "call" => {
            want(1)?;
            Ok(Inst::Call {
                func: parse_func(line, ops[0])?,
            })
        }
        "calli" => {
            want(1)?;
            Ok(Inst::CallInd {
                rs: parse_reg(line, ops[0])?,
            })
        }
        "ret" => {
            want(0)?;
            Ok(Inst::Ret)
        }
        "sys" => {
            want(1)?;
            Ok(Inst::Sys {
                call: parse_syscall(line, ops[0])?,
            })
        }
        "nop" => {
            want(0)?;
            Ok(Inst::Nop)
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

/// Parses a multi-line listing, skipping blank lines and `;` comments.
///
/// Accepts `Program::disassemble` output directly: function-header lines
/// (ending in `:`, e.g. `fn#0 <main> (args=0, frame=0):`) are skipped and
/// numeric instruction-index prefixes (`  12: sw ...`) are stripped, so
/// `hbrun --disasm` output round-trips without preprocessing.
///
/// # Errors
///
/// Returns the first [`AsmError`] encountered.
pub fn parse_listing(text: &str) -> Result<Vec<Inst>, AsmError> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with(';') && !l.ends_with(':'))
        .map(|l| {
            let body = match l.split_once(':') {
                Some((idx, rest)) if idx.trim().parse::<u32>().is_ok() => rest.trim(),
                _ => l,
            };
            parse_inst(body)
        })
        .collect()
}

/// Parses a whole-program listing — the grammar `Program::disassemble`
/// emits — back into a [`Program`].
///
/// Function boundaries come from `fn#N <name> (args=A, frame=F):` header
/// lines; an optional `; entry: fn#N` comment (the disassembler always
/// writes one) selects the entry point, defaulting to a function named
/// `main`, then to `fn#0`. A headerless listing becomes a single
/// zero-frame function named `main` — so a bare `parse_listing`-style µop
/// listing is also a valid program.
///
/// Only code and the entry point round-trip: initialized data sections and
/// the globals reservation are not part of the listing.
///
/// # Errors
///
/// Returns [`AsmError`] on the first malformed line, or if the listing
/// contains no instructions. The returned program is **not** validated —
/// callers run [`Program::validate`] for structural checks.
pub fn parse_program(text: &str) -> Result<Program, AsmError> {
    let mut functions: Vec<Function> = Vec::new();
    let mut current: Option<Function> = None;
    let mut entry: Option<FuncId> = None;
    let mut globals_size = 0;
    let mut data = Vec::new();

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix(';') {
            let comment = comment.trim();
            if let Some(e) = comment.strip_prefix("entry:") {
                entry = Some(parse_func(line, e.trim())?);
            } else if let Some(g) = comment.strip_prefix("globals:") {
                globals_size = parse_u32(line, g.trim())?;
            } else if let Some(d) = comment.strip_prefix("data ") {
                data.push(parse_data_line(line, d)?);
            }
            continue;
        }
        if line.ends_with(':') {
            if line.starts_with("fn#") {
                functions.extend(current.take());
                current = Some(parse_func_header(line)?);
            }
            // Other label-like lines are skipped, as in `parse_listing`.
            continue;
        }
        // Strip the optional `NN:` instruction-index prefix.
        let body = match line.split_once(':') {
            Some((idx, rest)) if idx.trim().parse::<u32>().is_ok() => rest.trim(),
            _ => line,
        };
        let inst = parse_inst(body)?;
        current
            .get_or_insert_with(|| Function {
                name: "main".to_owned(),
                insts: Vec::new(),
                frame_size: 0,
                num_args: 0,
            })
            .insts
            .push(inst);
    }
    functions.extend(current.take());
    if functions.is_empty() {
        return Err(err(text.trim(), "listing contains no instructions"));
    }
    let entry = entry
        .or_else(|| {
            functions
                .iter()
                .position(|f| f.name == "main")
                .map(|i| FuncId(i as u32))
        })
        .unwrap_or(FuncId(0));
    Ok(Program {
        functions,
        entry,
        globals_size,
        data,
    })
}

/// Parses the tail of a `; data 0xADDR: hh hh …` line.
fn parse_data_line(line: &str, tail: &str) -> Result<crate::program::DataInit, AsmError> {
    let (addr, hex) = tail
        .split_once(':')
        .ok_or_else(|| err(line, "data line lacks `:`"))?;
    let addr = parse_u32(line, addr.trim())?;
    let bytes = hex
        .split_whitespace()
        .map(|h| u8::from_str_radix(h, 16).map_err(|_| err(line, format!("bad data byte `{h}`"))))
        .collect::<Result<Vec<u8>, AsmError>>()?;
    Ok(crate::program::DataInit { addr, bytes })
}

/// Parses a `fn#N <name> (args=A, frame=F):` function-header line.
fn parse_func_header(line: &str) -> Result<Function, AsmError> {
    let bad = |msg: &str| err(line, msg);
    let name = line
        .split_once('<')
        .and_then(|(_, rest)| rest.split_once('>'))
        .map(|(name, _)| name.to_owned())
        .ok_or_else(|| bad("function header lacks a `<name>`"))?;
    let field = |key: &str| -> Result<u32, AsmError> {
        let tail = line
            .split_once(&format!("{key}="))
            .map(|(_, t)| t)
            .ok_or_else(|| err(line, format!("function header lacks `{key}=`")))?;
        let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
        parse_u32(line, &digits)
    };
    let num_args = field("args")?;
    let frame_size = field("frame")?;
    if num_args > u32::from(u8::MAX) {
        return Err(bad("args out of range"));
    }
    Ok(Function {
        name,
        insts: Vec::new(),
        frame_size,
        num_args: num_args as u8,
    })
}

fn parse_binop(m: &str) -> Option<BinOp> {
    Some(match m {
        "add" => BinOp::Add,
        "sub" => BinOp::Sub,
        "mul" => BinOp::Mul,
        "mulh" => BinOp::Mulh,
        "div" => BinOp::Div,
        "rem" => BinOp::Rem,
        "and" => BinOp::And,
        "or" => BinOp::Or,
        "xor" => BinOp::Xor,
        "shl" => BinOp::Shl,
        "shr" => BinOp::Shr,
        "sra" => BinOp::Sra,
        _ => return None,
    })
}

fn parse_cmpop(m: &str) -> Option<CmpOp> {
    Some(match m {
        "eq" => CmpOp::Eq,
        "ne" => CmpOp::Ne,
        "lt" => CmpOp::Lt,
        "le" => CmpOp::Le,
        "gt" => CmpOp::Gt,
        "ge" => CmpOp::Ge,
        "ltu" => CmpOp::LtU,
        "geu" => CmpOp::GeU,
        _ => return None,
    })
}

fn parse_syscall(line: &str, s: &str) -> Result<SysCall, AsmError> {
    Ok(match s {
        "print_int" => SysCall::PrintInt,
        "print_char" => SysCall::PrintChar,
        "halt" => SysCall::Halt,
        "abort" => SysCall::Abort,
        "ot_register" => SysCall::OtRegister,
        "ot_unregister" => SysCall::OtUnregister,
        "ot_check" => SysCall::OtCheck,
        "ot_check_arith" => SysCall::OtCheckArith,
        other => return Err(err(line, format!("unknown syscall `{other}`"))),
    })
}

fn parse_reg(line: &str, s: &str) -> Result<Reg, AsmError> {
    match s {
        "zero" => return Ok(Reg::ZERO),
        "sp" => return Ok(Reg::SP),
        "fp" => return Ok(Reg::FP),
        "gp" => return Ok(Reg::GP),
        _ => {}
    }
    if !s.is_ascii() || s.len() < 2 {
        return Err(err(line, format!("bad register `{s}`")));
    }
    let (class, number) = s.split_at(1);
    let n: u8 = number
        .parse()
        .map_err(|_| err(line, format!("bad register `{s}`")))?;
    let index = match class {
        "a" if usize::from(n) < Reg::NUM_ARG_REGS => 4 + n,
        "t" => Reg::FIRST_TEMP.checked_add(n).unwrap_or(u8::MAX),
        _ => return Err(err(line, format!("bad register `{s}`"))),
    };
    Reg::try_new(index).ok_or_else(|| err(line, format!("register `{s}` out of range")))
}

fn parse_operand(line: &str, s: &str) -> Result<Operand, AsmError> {
    if s.starts_with(|c: char| c.is_ascii_alphabetic()) {
        Ok(Operand::Reg(parse_reg(line, s)?))
    } else {
        let imm: i32 = s
            .parse()
            .map_err(|_| err(line, format!("bad immediate `{s}`")))?;
        Ok(Operand::Imm(imm))
    }
}

fn parse_func(line: &str, s: &str) -> Result<FuncId, AsmError> {
    let id = s
        .strip_prefix("fn#")
        .ok_or_else(|| err(line, format!("expected `fn#N`, found `{s}`")))?;
    Ok(FuncId(parse_u32(line, id)?))
}

fn parse_u32(line: &str, s: &str) -> Result<u32, AsmError> {
    let parsed = match s.strip_prefix("0x") {
        Some(hex) => u32::from_str_radix(hex, 16),
        None => s.parse(),
    };
    parsed.map_err(|_| err(line, format!("bad value `{s}`")))
}

/// Parses a `[reg+offset]` / `[reg-offset]` memory operand.
fn parse_mem(line: &str, s: &str) -> Result<(Reg, i32), AsmError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| err(line, format!("expected `[reg±offset]`, found `{s}`")))?;
    let split = inner
        .char_indices()
        .find(|&(_, c)| c == '+' || c == '-')
        .map(|(i, _)| i)
        .ok_or_else(|| err(line, format!("memory operand `{s}` lacks a signed offset")))?;
    let (reg, offset) = inner.split_at(split);
    let offset: i32 = offset
        .parse()
        .map_err(|_| err(line, format!("bad offset `{offset}`")))?;
    Ok((parse_reg(line, reg)?, offset))
}

/// Parses the `rs2 -> target` tail of a branch.
fn parse_arrow(line: &str, s: &str) -> Result<(Operand, u32), AsmError> {
    let (rs2, target) = s
        .split_once("->")
        .ok_or_else(|| err(line, format!("branch tail `{s}` lacks `->`")))?;
    Ok((
        parse_operand(line, rs2.trim())?,
        parse_u32(line, target.trim())?,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_disassembler_examples() {
        assert_eq!(
            parse_inst("li    a0, 0x1000").unwrap(),
            Inst::Li {
                rd: Reg::A0,
                imm: 0x1000
            }
        );
        assert_eq!(
            parse_inst("sb    [a0-4], a2").unwrap(),
            Inst::Store {
                width: Width::Byte,
                src: Reg::A2,
                addr: Reg::A0,
                offset: -4
            }
        );
        assert_eq!(
            parse_inst("beq   a0, 0 -> 7").unwrap(),
            Inst::Branch {
                op: CmpOp::Eq,
                rs1: Reg::A0,
                rs2: Operand::Imm(0),
                target: 7
            }
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_inst("frobnicate a0").is_err());
        assert!(parse_inst("li a0").is_err());
        assert!(parse_inst("lw a0, a1").is_err());
        assert!(parse_inst("add a9, a0, a1").is_err());
    }

    #[test]
    fn listing_skips_comments_and_blanks() {
        let insts = parse_listing("; prologue\n\nnop\n  ret\n").unwrap();
        assert_eq!(insts, vec![Inst::Nop, Inst::Ret]);
    }

    #[test]
    fn program_listing_roundtrips_disassembly() {
        use crate::builder::FunctionBuilder;
        use crate::program::Program;

        let mut helper = FunctionBuilder::new("helper", 2);
        helper.set_frame_size(16);
        helper.li(Reg::A0, 7);
        helper.ret();
        let mut main = FunctionBuilder::new("main", 0);
        main.call(FuncId(0));
        main.halt();
        let mut p = Program::with_entry(vec![helper.finish(), main.finish()]);
        p.entry = FuncId(1);
        p.globals_size = 24;
        p.data.push(crate::program::DataInit {
            addr: 0x0001_0000,
            bytes: vec![0xde, 0xad, 0xbe, 0xef],
        });

        let text = p.disassemble();
        let back = parse_program(&text).expect("disassembly must re-assemble");
        assert_eq!(back, p);
        assert_eq!(back.validate(), Ok(()));
    }

    #[test]
    fn headerless_listing_becomes_single_main() {
        let p = parse_program("li a0, 3\nsys halt\n").unwrap();
        assert_eq!(p.functions.len(), 1);
        assert_eq!(p.functions[0].name, "main");
        assert_eq!(p.entry, FuncId(0));
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    fn empty_listing_is_an_error() {
        assert!(parse_program("; nothing here\n").is_err());
    }
}
