//! Virtual-address-space layout of the simulated machine.
//!
//! The entire *program-visible* address space sits below 128 MB so that
//! every data pointer is eligible for the paper's internal compressed
//! encodings, which require pointers to lie in the lowest or highest 128 MB
//! of the virtual address space (paper §4.3). The hardware metadata spaces
//! (base/bound shadow, tag space) are *conceptual* virtual regions used for
//! cache indexing and page accounting; they are modelled with 64-bit
//! addresses so they can never collide with program data.

/// Base of the code-handle region. The address of function `f` is
/// `CODE_BASE + 16 * f.0`; code addresses are never dereferenceable (their
/// sidecar metadata is `{MAXINT, MAXINT}` per paper §6.1).
pub const CODE_BASE: u32 = 0x0000_1000;

/// Byte stride between consecutive function handles in the code region.
pub const CODE_STRIDE: u32 = 16;

/// Base address of the global data section.
pub const GLOBALS_BASE: u32 = 0x0001_0000;

/// First address of the heap managed by the Cb runtime allocator.
pub const HEAP_BASE: u32 = 0x0100_0000;

/// One past the last usable heap address (64 MB heap).
pub const HEAP_END: u32 = 0x0500_0000;

/// Stack top; the stack grows downward from here.
pub const STACK_TOP: u32 = 0x0700_0000;

/// Lowest address the stack pointer may reach (8 MB stack).
pub const STACK_LIMIT: u32 = 0x0680_0000;

/// Base of the *software* shadow region used only by the SoftBound
/// (CCured-style) compiler mode, which maintains pointer metadata with
/// explicit instructions. `sw_shadow_addr` maps a word address into it.
pub const SW_SHADOW_BASE: u32 = 0x6000_0000;

/// Base of the hardware base/bound shadow space (paper §4.1):
/// `base(addr) = SHADOW_SPACE_BASE + addr * 2`, interleaved so base and
/// bound are fetched with one double-word access. Modelled as a 64-bit
/// conceptual address so it never collides with program data.
pub const HW_SHADOW_BASE: u64 = 0x1_0000_0000;

/// Base of the tag metadata space (paper §4.2): one bit (or one nibble, for
/// the external 4-bit encoding) per 32-bit word of program memory.
pub const HW_TAG_BASE: u64 = 0x3_0000_0000;

/// Size of a virtual-memory page (4 KB, as in the paper's evaluation).
pub const PAGE_SIZE: u64 = 4096;

/// Address of the base/bound shadow entry for the word containing `addr`
/// (paper §4.1's `base(addr) = SHADOW_SPACE_BASE + (addr * 2)`, expressed
/// over byte addresses: 8 metadata bytes per 4-byte word).
#[must_use]
pub fn hw_shadow_addr(addr: u32) -> u64 {
    HW_SHADOW_BASE + u64::from(addr & !3) * 2
}

/// Address of the tag metadata for the word containing `addr`, given the
/// number of tag bits per word (1 or 4).
///
/// With 1-bit tags one tag byte covers 32 data bytes; with 4-bit tags one
/// tag byte covers 8 data bytes (paper §4.2–4.3).
#[must_use]
pub fn hw_tag_addr(addr: u32, tag_bits: u32) -> u64 {
    debug_assert!(tag_bits == 1 || tag_bits == 4);
    let data_bytes_per_tag_byte = u64::from(32 / tag_bits);
    HW_TAG_BASE + u64::from(addr) / data_bytes_per_tag_byte
}

/// Address of the *software* shadow slot (SoftBound mode) holding the base
/// word for the pointer stored at word address `addr`; the bound word lives
/// at `+4`.
#[must_use]
pub fn sw_shadow_addr(addr: u32) -> u32 {
    SW_SHADOW_BASE + (addr & !3) * 2
}

/// The code-region address denoting function `func_index`.
#[must_use]
pub fn code_addr(func_index: u32) -> u32 {
    CODE_BASE + func_index * CODE_STRIDE
}

/// Inverse of [`code_addr`]; `None` if `addr` is not a function handle.
#[must_use]
pub fn func_index_of_code_addr(addr: u32) -> Option<u32> {
    if !(CODE_BASE..GLOBALS_BASE).contains(&addr) || !(addr - CODE_BASE).is_multiple_of(CODE_STRIDE)
    {
        return None;
    }
    Some((addr - CODE_BASE) / CODE_STRIDE)
}

/// The 4 KB page number of a conceptual 64-bit address.
#[must_use]
pub fn page_of(addr: u64) -> u64 {
    addr / PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_disjoint_and_ordered() {
        assert!(CODE_BASE < GLOBALS_BASE);
        assert!(GLOBALS_BASE < HEAP_BASE);
        assert!(HEAP_BASE < HEAP_END);
        assert!(HEAP_END < STACK_LIMIT);
        assert!(STACK_LIMIT < STACK_TOP);
        assert!(STACK_TOP <= SW_SHADOW_BASE);
    }

    #[test]
    fn program_space_fits_lowest_128mb() {
        // Required for the internal compressed encodings (paper §4.3).
        assert!(STACK_TOP <= 128 * 1024 * 1024);
    }

    #[test]
    fn sw_shadow_stays_in_32_bits() {
        // The largest program data address must map inside the u32 space.
        let top = sw_shadow_addr(STACK_TOP - 4);
        assert!(top > SW_SHADOW_BASE);
        assert_eq!(sw_shadow_addr(0), SW_SHADOW_BASE);
        assert_eq!(sw_shadow_addr(7), SW_SHADOW_BASE + 8);
    }

    #[test]
    fn hw_shadow_is_interleaved_double_words() {
        assert_eq!(hw_shadow_addr(0), HW_SHADOW_BASE);
        assert_eq!(hw_shadow_addr(3), HW_SHADOW_BASE); // same word
        assert_eq!(hw_shadow_addr(4), HW_SHADOW_BASE + 8);
        assert_eq!(hw_shadow_addr(0x1000), HW_SHADOW_BASE + 0x2000);
    }

    #[test]
    fn tag_addresses_by_density() {
        assert_eq!(hw_tag_addr(0, 1), HW_TAG_BASE);
        assert_eq!(hw_tag_addr(31, 1), HW_TAG_BASE);
        assert_eq!(hw_tag_addr(32, 1), HW_TAG_BASE + 1);
        assert_eq!(hw_tag_addr(7, 4), HW_TAG_BASE);
        assert_eq!(hw_tag_addr(8, 4), HW_TAG_BASE + 1);
    }

    #[test]
    fn code_addr_roundtrip() {
        for f in [0u32, 1, 7, 100] {
            assert_eq!(func_index_of_code_addr(code_addr(f)), Some(f));
        }
        assert_eq!(func_index_of_code_addr(CODE_BASE + 1), None);
        assert_eq!(func_index_of_code_addr(0), None);
        assert_eq!(func_index_of_code_addr(GLOBALS_BASE), None);
    }

    #[test]
    fn page_numbering() {
        assert_eq!(page_of(0), 0);
        assert_eq!(page_of(4095), 0);
        assert_eq!(page_of(4096), 1);
        assert_eq!(page_of(HW_SHADOW_BASE), 0x1_0000_0000 / 4096);
    }
}
