//! Deterministic random-instruction generation for fuzzing the
//! disassembler/assembler pair and any other consumer that wants a stream
//! of structurally valid [`Inst`]s.
//!
//! The build environment has no `rand` crate, so this module carries its
//! own xorshift64* generator. Everything is a pure function of the seed:
//! `insts(seed, n)` always returns the same instructions, which lets test
//! failures name the seed that reproduces them.

use crate::inst::{BinOp, CmpOp, Inst, Operand, SysCall, Width};
use crate::program::FuncId;
use crate::reg::Reg;

/// A tiny xorshift64* PRNG; deterministic and seedable.
#[derive(Clone, Debug)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// Creates a generator from a seed (any value, including 0).
    #[must_use]
    pub fn new(seed: u64) -> FuzzRng {
        FuzzRng {
            state: seed.wrapping_mul(0x2545_f491_4f6c_dd1d) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Uniform-ish value in `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    fn reg(&mut self) -> Reg {
        Reg::new(self.below(Reg::COUNT as u64) as u8)
    }

    fn operand(&mut self) -> Operand {
        if self.below(2) == 0 {
            Operand::Reg(self.reg())
        } else {
            Operand::Imm(self.next_u64() as i32 % 0x1_0000)
        }
    }

    fn width(&mut self) -> Width {
        if self.below(2) == 0 {
            Width::Byte
        } else {
            Width::Word
        }
    }

    fn binop(&mut self) -> BinOp {
        const OPS: [BinOp; 12] = [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::Mulh,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Sra,
        ];
        OPS[self.below(OPS.len() as u64) as usize]
    }

    fn cmpop(&mut self) -> CmpOp {
        const OPS: [CmpOp; 8] = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::LtU,
            CmpOp::GeU,
        ];
        OPS[self.below(OPS.len() as u64) as usize]
    }

    fn syscall(&mut self) -> SysCall {
        const CALLS: [SysCall; 8] = [
            SysCall::PrintInt,
            SysCall::PrintChar,
            SysCall::Halt,
            SysCall::Abort,
            SysCall::OtRegister,
            SysCall::OtUnregister,
            SysCall::OtCheck,
            SysCall::OtCheckArith,
        ];
        CALLS[self.below(CALLS.len() as u64) as usize]
    }

    fn offset(&mut self) -> i32 {
        self.next_u64() as i32 % 0x1000
    }

    fn func(&mut self) -> FuncId {
        FuncId(self.below(64) as u32)
    }

    fn target(&mut self) -> u32 {
        self.below(256) as u32
    }

    /// One random instruction, uniform over the 18 variants.
    pub fn inst(&mut self) -> Inst {
        match self.below(18) {
            0 => Inst::Li {
                rd: self.reg(),
                imm: self.next_u64() as u32,
            },
            1 => Inst::Mov {
                rd: self.reg(),
                rs: self.reg(),
            },
            2 => Inst::Bin {
                op: self.binop(),
                rd: self.reg(),
                rs1: self.reg(),
                rs2: self.operand(),
            },
            3 => Inst::Cmp {
                op: self.cmpop(),
                rd: self.reg(),
                rs1: self.reg(),
                rs2: self.operand(),
            },
            4 => Inst::Load {
                width: self.width(),
                rd: self.reg(),
                addr: self.reg(),
                offset: self.offset(),
            },
            5 => Inst::Store {
                width: self.width(),
                src: self.reg(),
                addr: self.reg(),
                offset: self.offset(),
            },
            6 => Inst::SetBound {
                rd: self.reg(),
                rs: self.reg(),
                size: self.operand(),
            },
            7 => Inst::Unbound {
                rd: self.reg(),
                rs: self.reg(),
            },
            8 => Inst::CodePtr {
                rd: self.reg(),
                func: self.func(),
            },
            9 => Inst::ReadBase {
                rd: self.reg(),
                rs: self.reg(),
            },
            10 => Inst::ReadBound {
                rd: self.reg(),
                rs: self.reg(),
            },
            11 => Inst::Branch {
                op: self.cmpop(),
                rs1: self.reg(),
                rs2: self.operand(),
                target: self.target(),
            },
            12 => Inst::Jump {
                target: self.target(),
            },
            13 => Inst::Call { func: self.func() },
            14 => Inst::CallInd { rs: self.reg() },
            15 => Inst::Ret,
            16 => Inst::Sys {
                call: self.syscall(),
            },
            _ => Inst::Nop,
        }
    }
}

/// `n` random instructions derived from `seed`.
#[must_use]
pub fn insts(seed: u64, n: usize) -> Vec<Inst> {
    let mut rng = FuzzRng::new(seed);
    (0..n).map(|_| rng.inst()).collect()
}

/// A loop-heavy program family: a counted self-loop whose body mixes
/// adjacent-field accesses off a loop-invariant struct pointer, redundant
/// re-loads, and a strided array walk through a rewritten cursor.
///
/// Where [`insts`] produces unstructured instruction soup (good at
/// straight-line redundancy, terrible at loops), this family is shaped so
/// the bounds-check optimizer's hoisting and coalescing passes actually
/// fire — while the randomized object sizes, field counts, strides, and
/// trip counts make some walks run off their array's bound mid-loop, which
/// pins trap-site identity under optimization. The result is a complete,
/// structurally valid function body (branch targets in range, `Halt`
/// last); everything is a pure function of `seed`.
#[must_use]
pub fn loop_insts(seed: u64) -> Vec<Inst> {
    let mut rng = FuzzRng::new(seed ^ 0x4c4f_4f50); // "LOOP"
    let obj = Reg::A0; // invariant struct pointer: never written in the loop
    let arr = Reg::A1; // array base, copied into the walking cursor
    let cursor = Reg::A2; // strided-walk cursor, advanced every iteration
    let counter = Reg::A3;
    let tmp = Reg::A4;
    let sink = Reg::A5;
    let obj_size = 16 + 4 * rng.below(13) as i32; // 16..=64 bytes
    let arr_size = 32 + 4 * rng.below(25) as i32; // 32..=128 bytes
    let mut insts = vec![
        Inst::Li {
            rd: obj,
            imm: crate::layout::HEAP_BASE,
        },
        Inst::SetBound {
            rd: obj,
            rs: obj,
            size: Operand::Imm(obj_size),
        },
        Inst::Li {
            rd: arr,
            imm: crate::layout::HEAP_BASE + 256,
        },
        Inst::SetBound {
            rd: arr,
            rs: arr,
            size: Operand::Imm(arr_size),
        },
        Inst::Li {
            rd: counter,
            imm: 0,
        },
        Inst::Mov {
            rd: cursor,
            rs: arr,
        },
    ];
    let head = insts.len() as u32;
    // Adjacent struct fields off the invariant base: coalescing fodder in
    // a straight block, hoisting fodder once the back edge makes the
    // decoded superblock a self-loop.
    for field in 0..2 + rng.below(3) {
        insts.push(Inst::Load {
            width: Width::Word,
            rd: tmp,
            addr: obj,
            offset: 4 * field as i32,
        });
        insts.push(Inst::Bin {
            op: BinOp::Add,
            rd: sink,
            rs1: sink,
            rs2: Operand::Reg(tmp),
        });
    }
    // Sometimes store back to a just-checked field: a subset window for
    // redundant-check elimination.
    if rng.below(2) == 0 {
        insts.push(Inst::Store {
            width: Width::Word,
            src: sink,
            addr: obj,
            offset: 0,
        });
    }
    // The strided walk; a repeated load is pure RCE fodder.
    insts.push(Inst::Load {
        width: Width::Word,
        rd: tmp,
        addr: cursor,
        offset: 0,
    });
    if rng.below(2) == 0 {
        insts.push(Inst::Load {
            width: Width::Word,
            rd: sink,
            addr: cursor,
            offset: 0,
        });
    }
    let stride = 4 * (1 + rng.below(3)) as i32; // 4, 8, or 12
    insts.push(Inst::Bin {
        op: BinOp::Add,
        rd: cursor,
        rs1: cursor,
        rs2: Operand::Imm(stride),
    });
    insts.push(Inst::Bin {
        op: BinOp::Add,
        rd: counter,
        rs1: counter,
        rs2: Operand::Imm(1),
    });
    // Some (trips, stride) draws walk past the array bound mid-loop and
    // must trap there — optimized and unoptimized alike.
    let trips = 3 + rng.below(6) as i32; // 3..=8
    insts.push(Inst::Branch {
        op: CmpOp::Lt,
        rs1: counter,
        rs2: Operand::Imm(trips),
        target: head,
    });
    insts.push(Inst::Li {
        rd: Reg::A0,
        imm: 0,
    });
    insts.push(Inst::Sys {
        call: SysCall::Halt,
    });
    insts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        assert_eq!(insts(7, 100), insts(7, 100));
        assert_ne!(insts(7, 100), insts(8, 100));
    }

    #[test]
    fn loop_family_is_deterministic_and_well_formed() {
        assert_eq!(loop_insts(3), loop_insts(3));
        assert_ne!(loop_insts(3), loop_insts(4));
        for seed in 0..32 {
            let insts = loop_insts(seed);
            assert!(
                matches!(insts.last(), Some(Inst::Sys { .. })),
                "ends halted"
            );
            let backedge = insts.iter().any(
                |i| matches!(i, Inst::Branch { target, .. } if (*target as usize) < insts.len()),
            );
            assert!(backedge, "seed {seed}: loop family must loop");
        }
    }

    #[test]
    fn covers_every_variant_quickly() {
        let discriminants: std::collections::HashSet<_> =
            insts(1, 2000).iter().map(std::mem::discriminant).collect();
        assert_eq!(
            discriminants.len(),
            18,
            "generator misses instruction variants"
        );
    }
}
