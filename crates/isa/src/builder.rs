//! Structured construction of [`Function`]s with symbolic labels.

use crate::inst::{BinOp, CmpOp, Inst, Operand, SysCall, Width};
use crate::program::{FuncId, Function};
use crate::reg::Reg;

/// A forward-referenceable branch target inside a function under
/// construction (create with [`FunctionBuilder::new_label`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental builder for a [`Function`].
///
/// Labels may be used before they are bound; [`FunctionBuilder::finish`]
/// patches every branch to the instruction index the label was bound to.
///
/// ```
/// use hardbound_isa::{FunctionBuilder, Reg};
///
/// let mut b = FunctionBuilder::new("loop3", 0);
/// b.li(Reg::A0, 0);
/// let head = b.bind_label();
/// b.addi(Reg::A0, Reg::A0, 1);
/// b.branch(hardbound_isa::CmpOp::Lt, Reg::A0, 3, head);
/// b.ret();
/// let f = b.finish();
/// assert_eq!(f.insts.len(), 4);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    num_args: u8,
    frame_size: u32,
    insts: Vec<Inst>,
    /// Bound position of each label (`u32::MAX` = unbound).
    labels: Vec<u32>,
    /// Instruction indices whose branch target is a label id to patch.
    patches: Vec<(usize, Label)>,
}

impl FunctionBuilder {
    /// Starts building a function with `num_args` register arguments.
    #[must_use]
    pub fn new(name: impl Into<String>, num_args: u8) -> FunctionBuilder {
        FunctionBuilder {
            name: name.into(),
            num_args,
            frame_size: 0,
            insts: Vec::new(),
            labels: Vec::new(),
            patches: Vec::new(),
        }
    }

    /// Sets the stack-frame size in bytes (rounded up to 8).
    pub fn set_frame_size(&mut self, bytes: u32) {
        self.frame_size = bytes.next_multiple_of(8);
    }

    /// Current frame size in bytes.
    #[must_use]
    pub fn frame_size(&self) -> u32 {
        self.frame_size
    }

    /// Creates an unbound label for later [`bind`](Self::bind).
    pub fn new_label(&mut self) -> Label {
        self.labels.push(u32::MAX);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the *next* emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert_eq!(self.labels[label.0], u32::MAX, "label bound twice");
        self.labels[label.0] = self.insts.len() as u32;
    }

    /// Creates a label and binds it at the current position.
    pub fn bind_label(&mut self) -> Label {
        let l = self.new_label();
        self.bind(l);
        l
    }

    /// Index of the next instruction to be emitted.
    #[must_use]
    pub fn here(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Emits a raw instruction and returns its index.
    pub fn emit(&mut self, inst: Inst) -> usize {
        self.insts.push(inst);
        self.insts.len() - 1
    }

    // --- straightforward emit helpers -----------------------------------

    /// `rd ← imm`.
    pub fn li(&mut self, rd: Reg, imm: u32) {
        self.emit(Inst::Li { rd, imm });
    }

    /// `rd ← rs` (copies sidecar metadata).
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::Mov { rd, rs });
    }

    /// `rd ← rs1 op rs2`.
    pub fn bin(&mut self, op: BinOp, rd: Reg, rs1: Reg, rs2: impl Into<Operand>) {
        self.emit(Inst::Bin {
            op,
            rd,
            rs1,
            rs2: rs2.into(),
        });
    }

    /// `rd ← rs1 + imm` (bounds-propagating).
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) {
        self.bin(BinOp::Add, rd, rs1, imm);
    }

    /// `rd ← rs1 + rs2` (bounds-propagating).
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) {
        self.bin(BinOp::Add, rd, rs1, rs2);
    }

    /// `rd ← rs1 - rs2ORimm` (bounds-propagating).
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: impl Into<Operand>) {
        self.bin(BinOp::Sub, rd, rs1, rs2);
    }

    /// `rd ← (rs1 cmp rs2) ? 1 : 0`.
    pub fn cmp(&mut self, op: CmpOp, rd: Reg, rs1: Reg, rs2: impl Into<Operand>) {
        self.emit(Inst::Cmp {
            op,
            rd,
            rs1,
            rs2: rs2.into(),
        });
    }

    /// `rd ← Mem[addr+offset]`.
    pub fn load(&mut self, width: Width, rd: Reg, addr: Reg, offset: i32) {
        self.emit(Inst::Load {
            width,
            rd,
            addr,
            offset,
        });
    }

    /// `Mem[addr+offset] ← src`.
    pub fn store(&mut self, width: Width, src: Reg, addr: Reg, offset: i32) {
        self.emit(Inst::Store {
            width,
            src,
            addr,
            offset,
        });
    }

    /// `setbound rd ← rs, size-register`.
    pub fn setbound(&mut self, rd: Reg, rs: Reg, size: Reg) {
        self.emit(Inst::SetBound {
            rd,
            rs,
            size: size.into(),
        });
    }

    /// `setbound rd ← rs, size-immediate`.
    pub fn setbound_imm(&mut self, rd: Reg, rs: Reg, size: i32) {
        self.emit(Inst::SetBound {
            rd,
            rs,
            size: size.into(),
        });
    }

    /// The §3.2 escape hatch: `rd` gets `rs`'s value with `{0, MAXINT}`.
    pub fn unbound(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::Unbound { rd, rs });
    }

    /// Materializes a function pointer with the code-pointer sidecar.
    pub fn code_ptr(&mut self, rd: Reg, func: FuncId) {
        self.emit(Inst::CodePtr { rd, func });
    }

    /// `rd ← rs.base`.
    pub fn readbase(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::ReadBase { rd, rs });
    }

    /// `rd ← rs.bound`.
    pub fn readbound(&mut self, rd: Reg, rs: Reg) {
        self.emit(Inst::ReadBound { rd, rs });
    }

    /// Conditional branch to `label`.
    pub fn branch(&mut self, op: CmpOp, rs1: Reg, rs2: impl Into<Operand>, label: Label) {
        let idx = self.emit(Inst::Branch {
            op,
            rs1,
            rs2: rs2.into(),
            target: u32::MAX,
        });
        self.patches.push((idx, label));
    }

    /// Unconditional jump to `label`.
    pub fn jump(&mut self, label: Label) {
        let idx = self.emit(Inst::Jump { target: u32::MAX });
        self.patches.push((idx, label));
    }

    /// Direct call.
    pub fn call(&mut self, func: FuncId) {
        self.emit(Inst::Call { func });
    }

    /// Indirect call through `rs`.
    pub fn call_indirect(&mut self, rs: Reg) {
        self.emit(Inst::CallInd { rs });
    }

    /// Return.
    pub fn ret(&mut self) {
        self.emit(Inst::Ret);
    }

    /// Environment call.
    pub fn sys(&mut self, call: SysCall) {
        self.emit(Inst::Sys { call });
    }

    /// `sys halt`.
    pub fn halt(&mut self) {
        self.sys(SysCall::Halt);
    }

    /// Finalizes the function, resolving all label references.
    ///
    /// # Panics
    ///
    /// Panics if any referenced label was never bound.
    #[must_use]
    pub fn finish(mut self) -> Function {
        for (idx, label) in std::mem::take(&mut self.patches) {
            let pos = self.labels[label.0];
            assert_ne!(
                pos,
                u32::MAX,
                "label {label:?} used but never bound in {}",
                self.name
            );
            match &mut self.insts[idx] {
                Inst::Branch { target, .. } | Inst::Jump { target } => *target = pos,
                other => unreachable!("patched non-branch {other:?}"),
            }
        }
        Function {
            name: self.name,
            insts: self.insts,
            frame_size: self.frame_size,
            num_args: self.num_args,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut b = FunctionBuilder::new("f", 0);
        let end = b.new_label();
        b.li(Reg::A0, 0); // 0
        let head = b.bind_label(); // binds at 1
        b.addi(Reg::A0, Reg::A0, 1); // 1
        b.branch(CmpOp::Ge, Reg::A0, 10, end); // 2
        b.jump(head); // 3
        b.bind(end);
        b.ret(); // 4
        let f = b.finish();
        assert_eq!(
            f.insts[2],
            Inst::Branch {
                op: CmpOp::Ge,
                rs1: Reg::A0,
                rs2: Operand::Imm(10),
                target: 4
            }
        );
        assert_eq!(f.insts[3], Inst::Jump { target: 1 });
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = FunctionBuilder::new("f", 0);
        let l = b.new_label();
        b.jump(l);
        b.ret();
        let _ = b.finish();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = FunctionBuilder::new("f", 0);
        let l = b.new_label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn frame_size_rounds_to_eight() {
        let mut b = FunctionBuilder::new("f", 0);
        b.set_frame_size(13);
        assert_eq!(b.frame_size(), 16);
        b.set_frame_size(16);
        assert_eq!(b.frame_size(), 16);
        b.set_frame_size(0);
        assert_eq!(b.frame_size(), 0);
    }

    #[test]
    fn helpers_emit_expected_instructions() {
        let mut b = FunctionBuilder::new("f", 2);
        b.li(Reg::T0, 5);
        b.mov(Reg::T1, Reg::T0);
        b.setbound_imm(Reg::T1, Reg::T1, 8);
        b.unbound(Reg::T2, Reg::T1);
        b.readbase(Reg::A0, Reg::T1);
        b.readbound(Reg::A1, Reg::T1);
        b.cmp(CmpOp::Eq, Reg::A2, Reg::A0, Reg::A1);
        b.load(Width::Word, Reg::A3, Reg::T1, 0);
        b.store(Width::Byte, Reg::A3, Reg::T1, 1);
        b.call(FuncId(0));
        b.call_indirect(Reg::T1);
        b.halt();
        let f = b.finish();
        assert_eq!(f.num_args, 2);
        assert_eq!(f.insts.len(), 12);
        assert!(matches!(f.insts[2], Inst::SetBound { .. }));
        assert!(matches!(f.insts[3], Inst::Unbound { .. }));
        assert!(matches!(
            f.insts.last(),
            Some(Inst::Sys {
                call: SysCall::Halt
            })
        ));
    }

    #[test]
    fn here_tracks_position() {
        let mut b = FunctionBuilder::new("f", 0);
        assert_eq!(b.here(), 0);
        b.li(Reg::A0, 1);
        assert_eq!(b.here(), 1);
    }
}
