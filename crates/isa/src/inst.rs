use crate::program::FuncId;
use crate::reg::Reg;

/// Access width of a memory operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Width {
    /// 8-bit access (zero-extended on load).
    Byte,
    /// 32-bit, naturally aligned access.
    Word,
}

impl Width {
    /// Number of bytes accessed.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Word => 4,
        }
    }
}

/// Second source of a three-address instruction: a register or an immediate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Sign-relevant 32-bit immediate operand.
    Imm(i32),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(imm: i32) -> Operand {
        Operand::Imm(imm)
    }
}

/// Binary ALU operation.
///
/// HardBound's metadata-propagation policy (paper §3.1, Figure 3) is a
/// property of the *operation*: `add` and `sub` are pointer-forming and
/// propagate sidecar bounds; the rest are "not typically used to calculate
/// pointers" and clear them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping 32-bit addition. Propagates bounds (Figure 3 A/B).
    Add,
    /// Wrapping 32-bit subtraction. Propagates bounds (paper §3.1).
    Sub,
    /// Wrapping 32-bit multiplication (low word). Clears bounds.
    Mul,
    /// High 32 bits of the signed 64-bit product. Clears bounds.
    ///
    /// Not in the paper's µop list; added so the integer-only Cb runtime can
    /// implement exact 16.16 fixed-point arithmetic for the floating-point
    /// Olden benchmarks (see DESIGN.md substitutions).
    Mulh,
    /// Signed division (trapping on divide-by-zero). Clears bounds.
    Div,
    /// Signed remainder (trapping on divide-by-zero). Clears bounds.
    Rem,
    /// Bitwise AND. Clears bounds.
    And,
    /// Bitwise OR. Clears bounds.
    Or,
    /// Bitwise XOR. Clears bounds.
    Xor,
    /// Logical shift left (shift amount masked to 5 bits). Clears bounds.
    Shl,
    /// Logical shift right. Clears bounds.
    Shr,
    /// Arithmetic shift right. Clears bounds.
    Sra,
}

impl BinOp {
    /// Whether HardBound propagates sidecar metadata through this operation
    /// (paper §3.1: "add, sub, lea, mov, and xchg" propagate; multiply,
    /// divide, shift, rotate and logical operations do not).
    #[must_use]
    pub fn propagates_bounds(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub)
    }
}

/// Comparison predicate used by [`Inst::Cmp`] and [`Inst::Branch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    LtU,
    /// Unsigned greater-or-equal.
    GeU,
}

impl CmpOp {
    /// Evaluates the predicate on raw 32-bit values.
    #[must_use]
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => (a as i32) < (b as i32),
            CmpOp::Le => (a as i32) <= (b as i32),
            CmpOp::Gt => (a as i32) > (b as i32),
            CmpOp::Ge => (a as i32) >= (b as i32),
            CmpOp::LtU => a < b,
            CmpOp::GeU => a >= b,
        }
    }

    /// The predicate testing the negated condition.
    #[must_use]
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::LtU => CmpOp::GeU,
            CmpOp::GeU => CmpOp::LtU,
        }
    }
}

/// Environment call executed by the simulator rather than the µop pipeline.
///
/// `Print*` model console output; `Ot*` are the hooks used by the
/// ObjectTable comparison mode (JK/RL/DA-style splay-tree checking — see
/// DESIGN.md): the table lives host-side and each call is charged a
/// lookup-dependent cycle cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SysCall {
    /// Print the signed value of `a0` followed by a newline.
    PrintInt,
    /// Print the low byte of `a0` as a character.
    PrintChar,
    /// Stop the machine successfully; `a0` is the exit code.
    Halt,
    /// Abort with a software-detected error; `a0` is an error code.
    /// SoftBound mode jumps here when an explicit bounds check fails.
    Abort,
    /// Register the allocation `[a0, a0 + a1)` in the object table.
    OtRegister,
    /// Remove the allocation starting at `a0` from the object table.
    OtUnregister,
    /// Dereference check: `a1` must lie inside the object covering `a0`.
    OtCheck,
    /// Arithmetic check: pointer derivation from `a0` to `a1` must stay
    /// within the covering object (one-past-the-end allowed).
    OtCheckArith,
}

/// One micro-operation of the simulated machine.
///
/// Every variant costs one cycle in the in-order pipeline (paper §5.1, "at
/// most one micro-operation per cycle"); memory operations additionally pay
/// cache/TLB penalties, and HardBound metadata traffic inserts extra µops
/// exactly as described in paper §4.4.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `rd ← imm` — load immediate; clears `rd`'s metadata.
    Li {
        /// Destination register.
        rd: Reg,
        /// 32-bit immediate value.
        imm: u32,
    },
    /// `rd ← rs` — register move; copies metadata (paper §3.1: `mov`
    /// propagates).
    Mov {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd ← rs1 op rs2` — ALU operation with metadata policy from
    /// [`BinOp::propagates_bounds`].
    Bin {
        /// Operation.
        op: BinOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source operand.
        rs2: Operand,
    },
    /// `rd ← (rs1 cmp rs2) ? 1 : 0` — comparison producing a flag; clears
    /// metadata.
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source operand.
        rs2: Operand,
    },
    /// `rd ← Mem[addr + offset]` — load with implicit HardBound check on
    /// `addr`'s sidecar metadata (paper Figure 3 C). Word loads also fetch
    /// the loaded word's metadata.
    Load {
        /// Access width.
        width: Width,
        /// Destination register.
        rd: Reg,
        /// Address register (checked against its sidecar bounds).
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
    },
    /// `Mem[addr + offset] ← src` — store with implicit check (Figure 3 D).
    /// Word stores also write the stored value's metadata.
    Store {
        /// Access width.
        width: Width,
        /// Value register.
        src: Reg,
        /// Address register (checked against its sidecar bounds).
        addr: Reg,
        /// Constant byte offset.
        offset: i32,
    },
    /// `rd ← {rs.value; base: rs.value; bound: rs.value + size}` — the
    /// HardBound `setbound` instruction (paper §3.1).
    SetBound {
        /// Destination register.
        rd: Reg,
        /// Pointer-value source register.
        rs: Reg,
        /// Region size in bytes.
        size: Operand,
    },
    /// `rd ← {rs.value; base: 0; bound: MAXINT}` — the programmer escape
    /// hatch of paper §3.2: a pointer that passes every bounds check.
    Unbound {
        /// Destination register.
        rd: Reg,
        /// Pointer-value source register.
        rs: Reg,
    },
    /// `rd ← {code_addr(func); base: MAXINT; bound: MAXINT}` — materialize
    /// a function pointer. Code pointers get the `{MAXINT, MAXINT}` sidecar
    /// of paper §6.1: they are callable but fail every dereference check,
    /// "to prevent forging of arbitrary function pointers".
    CodePtr {
        /// Destination register.
        rd: Reg,
        /// Referenced function.
        func: FuncId,
    },
    /// `rd ← rs.base` — extract sidecar base (paper §3.1 footnote 1).
    ReadBase {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// `rd ← rs.bound` — extract sidecar bound (paper §3.1 footnote 1).
    ReadBound {
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs: Reg,
    },
    /// Conditional branch to instruction index `target` in the same
    /// function.
    Branch {
        /// Predicate.
        op: CmpOp,
        /// First source register.
        rs1: Reg,
        /// Second source operand.
        rs2: Operand,
        /// Destination instruction index.
        target: u32,
    },
    /// Unconditional branch to instruction index `target`.
    Jump {
        /// Destination instruction index.
        target: u32,
    },
    /// Direct call. Arguments are in `a0..a7`; the result returns in `a0`.
    Call {
        /// Callee.
        func: FuncId,
    },
    /// Indirect call through a code pointer (sidecar `{MAXINT, MAXINT}`).
    CallInd {
        /// Register holding a code-region address.
        rs: Reg,
    },
    /// Return from the current function.
    Ret,
    /// Environment call; see [`SysCall`].
    Sys {
        /// Which environment service.
        call: SysCall,
    },
    /// No operation (used by instrumentation padding in tests).
    Nop,
}

impl Inst {
    /// Whether this µop accesses program memory (used by the timing model).
    #[must_use]
    pub fn is_memory_op(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// Destination register, if the instruction writes one.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Inst::Li { rd, .. }
            | Inst::Mov { rd, .. }
            | Inst::Bin { rd, .. }
            | Inst::Cmp { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::SetBound { rd, .. }
            | Inst::Unbound { rd, .. }
            | Inst::CodePtr { rd, .. }
            | Inst::ReadBase { rd, .. }
            | Inst::ReadBound { rd, .. } => Some(rd),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn propagation_policy_matches_paper() {
        assert!(BinOp::Add.propagates_bounds());
        assert!(BinOp::Sub.propagates_bounds());
        for op in [
            BinOp::Mul,
            BinOp::Mulh,
            BinOp::Div,
            BinOp::Rem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::Shr,
            BinOp::Sra,
        ] {
            assert!(!op.propagates_bounds(), "{op:?} must clear bounds");
        }
    }

    #[test]
    fn cmp_eval_signed_vs_unsigned() {
        let minus_one = -1i32 as u32;
        assert!(CmpOp::Lt.eval(minus_one, 0));
        assert!(!CmpOp::LtU.eval(minus_one, 0));
        assert!(CmpOp::GeU.eval(minus_one, 0));
        assert!(CmpOp::Eq.eval(7, 7));
        assert!(CmpOp::Ne.eval(7, 8));
        assert!(CmpOp::Le.eval(7, 7));
        assert!(CmpOp::Gt.eval(8, 7));
        assert!(CmpOp::Ge.eval(7, 7));
    }

    #[test]
    fn cmp_negation_is_involutive_and_complementary() {
        let ops = [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::LtU,
            CmpOp::GeU,
        ];
        for op in ops {
            assert_eq!(op.negate().negate(), op);
            for (a, b) in [(0u32, 0u32), (1, 2), (u32::MAX, 0), (5, 5)] {
                assert_eq!(op.eval(a, b), !op.negate().eval(a, b), "{op:?} {a} {b}");
            }
        }
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Word.bytes(), 4);
    }

    #[test]
    fn dest_extraction() {
        assert_eq!(
            Inst::Li {
                rd: Reg::A0,
                imm: 3
            }
            .dest(),
            Some(Reg::A0)
        );
        assert_eq!(Inst::Ret.dest(), None);
        assert_eq!(
            Inst::Store {
                width: Width::Word,
                src: Reg::A0,
                addr: Reg::A1,
                offset: 0
            }
            .dest(),
            None
        );
    }

    #[test]
    fn memory_op_classification() {
        assert!(Inst::Load {
            width: Width::Word,
            rd: Reg::A0,
            addr: Reg::A1,
            offset: 0
        }
        .is_memory_op());
        assert!(!Inst::Nop.is_memory_op());
    }
}
