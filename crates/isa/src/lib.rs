//! Instruction-set architecture of the HardBound simulator.
//!
//! The paper evaluates HardBound on a simulated in-order 32-bit x86 machine
//! whose instructions are decoded into micro-operations executed at one µop
//! per cycle (paper §5.1). The ISA itself only matters through its
//! pointer-manipulation surface — which instructions create, copy, offset,
//! load, store and dereference pointers — so this reproduction defines a
//! compact RISC-like µop ISA with exactly that surface:
//!
//! * word-sized arithmetic whose metadata-propagation rules follow the
//!   paper's Figure 3 (`add`/`sub`/`mov` propagate bounds, `mul`/`div`/
//!   shifts/logic do not),
//! * byte and word loads/stores with *implicit* bounds checks,
//! * the HardBound primitives `setbound`, `readbase` and `readbound`
//!   (paper §3.1) plus the `unbound` escape hatch of §3.2.
//!
//! The crate is purely *definitional*: instruction and program data types, a
//! structured builder, a disassembler and validation. Execution semantics
//! live in `hardbound-core`.
//!
//! ```
//! use hardbound_isa::{FunctionBuilder, Program, Reg, Width};
//!
//! let mut f = FunctionBuilder::new("main", 0);
//! f.li(Reg::A0, 0x1000);
//! f.setbound_imm(Reg::A0, Reg::A0, 4);
//! f.load(Width::Word, Reg::A1, Reg::A0, 0);
//! f.halt();
//! let program = Program::with_entry(vec![f.finish()]);
//! assert!(program.validate().is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
mod builder;
mod disasm;
pub mod fuzz;
mod inst;
pub mod layout;
mod link;
mod program;
mod reg;

pub use asm::{parse_inst, parse_listing, parse_program, AsmError};
pub use builder::{FunctionBuilder, Label};
pub use inst::{BinOp, CmpOp, Inst, Operand, SysCall, Width};
pub use link::{merge_programs, LinkError};
pub use program::{DataInit, FuncId, Function, Program, ValidateError};
pub use reg::Reg;
