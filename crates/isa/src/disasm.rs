//! Textual rendering of instructions (`Display` impls).

use std::fmt;

use crate::inst::{BinOp, CmpOp, Inst, Operand, SysCall};

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Mulh => "mulh",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Sra => "sra",
        };
        f.pad(s)
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
            CmpOp::LtU => "ltu",
            CmpOp::GeU => "geu",
        };
        f.pad(s)
    }
}

impl fmt::Display for SysCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SysCall::PrintInt => "print_int",
            SysCall::PrintChar => "print_char",
            SysCall::Halt => "halt",
            SysCall::Abort => "abort",
            SysCall::OtRegister => "ot_register",
            SysCall::OtUnregister => "ot_unregister",
            SysCall::OtCheck => "ot_check",
            SysCall::OtCheckArith => "ot_check_arith",
        };
        f.write_str(s)
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Li { rd, imm } => write!(f, "li    {rd}, {imm:#x}"),
            Inst::Mov { rd, rs } => write!(f, "mov   {rd}, {rs}"),
            Inst::Bin { op, rd, rs1, rs2 } => write!(f, "{op:<5} {rd}, {rs1}, {rs2}"),
            Inst::Cmp { op, rd, rs1, rs2 } => write!(f, "c{op:<4} {rd}, {rs1}, {rs2}"),
            Inst::Load {
                width,
                rd,
                addr,
                offset,
            } => {
                let w = if width.bytes() == 1 { "lb" } else { "lw" };
                write!(f, "{w}    {rd}, [{addr}{offset:+}]")
            }
            Inst::Store {
                width,
                src,
                addr,
                offset,
            } => {
                let w = if width.bytes() == 1 { "sb" } else { "sw" };
                write!(f, "{w}    [{addr}{offset:+}], {src}")
            }
            Inst::SetBound { rd, rs, size } => write!(f, "setbound {rd}, {rs}, {size}"),
            Inst::Unbound { rd, rs } => write!(f, "unbound {rd}, {rs}"),
            Inst::CodePtr { rd, func } => write!(f, "codeptr {rd}, {func}"),
            Inst::ReadBase { rd, rs } => write!(f, "readbase {rd}, {rs}"),
            Inst::ReadBound { rd, rs } => write!(f, "readbound {rd}, {rs}"),
            Inst::Branch {
                op,
                rs1,
                rs2,
                target,
            } => {
                write!(f, "b{op:<4} {rs1}, {rs2} -> {target}")
            }
            Inst::Jump { target } => write!(f, "jmp   -> {target}"),
            Inst::Call { func } => write!(f, "call  {func}"),
            Inst::CallInd { rs } => write!(f, "calli {rs}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Sys { call } => write!(f, "sys   {call}"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::FuncId;
    use crate::reg::Reg;
    use crate::Width;

    #[test]
    fn instruction_rendering() {
        let cases: Vec<(Inst, &str)> = vec![
            (
                Inst::Li {
                    rd: Reg::A0,
                    imm: 0x1000,
                },
                "li    a0, 0x1000",
            ),
            (
                Inst::Mov {
                    rd: Reg::A1,
                    rs: Reg::A0,
                },
                "mov   a1, a0",
            ),
            (
                Inst::Bin {
                    op: BinOp::Add,
                    rd: Reg::A0,
                    rs1: Reg::A0,
                    rs2: Operand::Imm(1),
                },
                "add   a0, a0, 1",
            ),
            (
                Inst::Load {
                    width: Width::Word,
                    rd: Reg::A2,
                    addr: Reg::A0,
                    offset: 8,
                },
                "lw    a2, [a0+8]",
            ),
            (
                Inst::Store {
                    width: Width::Byte,
                    src: Reg::A2,
                    addr: Reg::A0,
                    offset: -4,
                },
                "sb    [a0-4], a2",
            ),
            (
                Inst::SetBound {
                    rd: Reg::A0,
                    rs: Reg::A0,
                    size: Operand::Imm(4),
                },
                "setbound a0, a0, 4",
            ),
            (Inst::Call { func: FuncId(2) }, "call  fn#2"),
            (
                Inst::Sys {
                    call: SysCall::Halt,
                },
                "sys   halt",
            ),
        ];
        for (inst, expected) in cases {
            assert_eq!(inst.to_string(), expected);
        }
    }

    #[test]
    fn every_variant_renders_nonempty() {
        let all = vec![
            Inst::Li {
                rd: Reg::A0,
                imm: 0,
            },
            Inst::Mov {
                rd: Reg::A0,
                rs: Reg::A1,
            },
            Inst::Bin {
                op: BinOp::Xor,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Reg::A2.into(),
            },
            Inst::Cmp {
                op: CmpOp::LtU,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Operand::Imm(3),
            },
            Inst::Load {
                width: Width::Byte,
                rd: Reg::A0,
                addr: Reg::A1,
                offset: 0,
            },
            Inst::Store {
                width: Width::Word,
                src: Reg::A0,
                addr: Reg::A1,
                offset: 0,
            },
            Inst::SetBound {
                rd: Reg::A0,
                rs: Reg::A1,
                size: Reg::A2.into(),
            },
            Inst::Unbound {
                rd: Reg::A0,
                rs: Reg::A1,
            },
            Inst::CodePtr {
                rd: Reg::A0,
                func: FuncId(1),
            },
            Inst::ReadBase {
                rd: Reg::A0,
                rs: Reg::A1,
            },
            Inst::ReadBound {
                rd: Reg::A0,
                rs: Reg::A1,
            },
            Inst::Branch {
                op: CmpOp::Eq,
                rs1: Reg::A0,
                rs2: Operand::Imm(0),
                target: 0,
            },
            Inst::Jump { target: 1 },
            Inst::Call { func: FuncId(0) },
            Inst::CallInd { rs: Reg::A0 },
            Inst::Ret,
            Inst::Sys {
                call: SysCall::OtCheck,
            },
            Inst::Nop,
        ];
        for inst in all {
            assert!(!inst.to_string().is_empty(), "{inst:?}");
        }
    }
}
