use std::fmt;

/// One of the 32 general-purpose registers of the simulated machine.
///
/// Architecturally every register carries a sidecar `{base, bound}` pair
/// (paper §3.1, "the architected state of registers ... are now triples");
/// the sidecars themselves are simulator state in `hardbound-core`, not part
/// of this identifier type.
///
/// Software conventions (enforced by `hardbound-compiler`, not hardware):
///
/// | register | role |
/// |---|---|
/// | `r0` | hardwired zero ([`Reg::ZERO`]) |
/// | `r1` | stack pointer ([`Reg::SP`]) |
/// | `r2` | frame pointer ([`Reg::FP`]) |
/// | `r3` | global-section pointer ([`Reg::GP`]) |
/// | `r4..=r11` | arguments / return value ([`Reg::A0`]..[`Reg::A7`]) |
/// | `r12..=r31` | expression temporaries ([`Reg::T0`]..) |
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of general-purpose registers.
    pub const COUNT: usize = 32;

    /// Hardwired zero register; writes are ignored, reads yield `0`.
    pub const ZERO: Reg = Reg(0);
    /// Stack pointer (software convention).
    pub const SP: Reg = Reg(1);
    /// Frame pointer (software convention).
    pub const FP: Reg = Reg(2);
    /// Global-section base pointer (software convention).
    pub const GP: Reg = Reg(3);
    /// First argument / return-value register.
    pub const A0: Reg = Reg(4);
    /// Second argument register.
    pub const A1: Reg = Reg(5);
    /// Third argument register.
    pub const A2: Reg = Reg(6);
    /// Fourth argument register.
    pub const A3: Reg = Reg(7);
    /// Fifth argument register.
    pub const A4: Reg = Reg(8);
    /// Sixth argument register.
    pub const A5: Reg = Reg(9);
    /// Seventh argument register.
    pub const A6: Reg = Reg(10);
    /// Eighth argument register.
    pub const A7: Reg = Reg(11);
    /// First expression temporary.
    pub const T0: Reg = Reg(12);
    /// Second expression temporary.
    pub const T1: Reg = Reg(13);
    /// Third expression temporary.
    pub const T2: Reg = Reg(14);

    /// Number of argument registers in the calling convention.
    pub const NUM_ARG_REGS: usize = 8;
    /// Index of the first expression-temporary register.
    pub const FIRST_TEMP: u8 = 12;

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Reg {
        assert!(
            (index as usize) < Reg::COUNT,
            "register index {index} out of range"
        );
        Reg(index)
    }

    /// Creates a register from its index if it is in range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Reg> {
        ((index as usize) < Reg::COUNT).then_some(Reg(index))
    }

    /// The `n`-th argument register (`n < 8`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 8`.
    #[must_use]
    pub fn arg(n: usize) -> Reg {
        assert!(n < Reg::NUM_ARG_REGS, "argument register {n} out of range");
        Reg(4 + n as u8)
    }

    /// The `n`-th temporary register.
    ///
    /// # Panics
    ///
    /// Panics if the index would exceed `r31`.
    #[must_use]
    pub fn temp(n: usize) -> Reg {
        let idx = Reg::FIRST_TEMP as usize + n;
        assert!(idx < Reg::COUNT, "temporary register {n} out of range");
        Reg(idx as u8)
    }

    /// Number of temporaries available to [`Reg::temp`].
    #[must_use]
    pub fn temp_count() -> usize {
        Reg::COUNT - Reg::FIRST_TEMP as usize
    }

    /// This register's index (`0..32`).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// `true` for the hardwired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Reg::ZERO => write!(f, "zero"),
            Reg::SP => write!(f, "sp"),
            Reg::FP => write!(f, "fp"),
            Reg::GP => write!(f, "gp"),
            Reg(n @ 4..=11) => write!(f, "a{}", n - 4),
            Reg(n) => write!(f, "t{}", n - Reg::FIRST_TEMP),
        }
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Reg({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_registers_have_expected_indices() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::SP.index(), 1);
        assert_eq!(Reg::FP.index(), 2);
        assert_eq!(Reg::GP.index(), 3);
        assert_eq!(Reg::A0.index(), 4);
        assert_eq!(Reg::arg(7).index(), 11);
        assert_eq!(Reg::T0.index(), 12);
        assert_eq!(Reg::temp(0), Reg::T0);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::ZERO.to_string(), "zero");
        assert_eq!(Reg::A0.to_string(), "a0");
        assert_eq!(Reg::arg(3).to_string(), "a3");
        assert_eq!(Reg::temp(2).to_string(), "t2");
        assert_eq!(Reg::new(31).to_string(), "t19");
    }

    #[test]
    fn try_new_bounds() {
        assert_eq!(Reg::try_new(31), Some(Reg::new(31)));
        assert_eq!(Reg::try_new(32), None);
    }

    #[test]
    #[should_panic(expected = "register index")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::SP.is_zero());
    }

    #[test]
    fn temp_count_matches_layout() {
        assert_eq!(Reg::temp_count(), 20);
        let _ = Reg::temp(Reg::temp_count() - 1);
    }
}
