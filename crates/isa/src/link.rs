//! A linker-style merger for parsed `.s` listings.
//!
//! `hbrun --disasm` emits one self-contained listing per program; real
//! builds want to split code across files — a hand-written `main.s` calling
//! into a shared `lib.s`, or a program dump next to a runtime dump.
//! [`merge_programs`] combines any number of parsed [`Program`]s into one
//! image with the classic static-linker moves:
//!
//! * **Renumbering** — each part's local `fn#N` references ([`Inst::Call`]
//!   and [`Inst::CodePtr`]) are rewritten to the merged function table.
//! * **Symbol resolution** — a function header with an *empty body*
//!   (`fn#1 <double_it> (args=1, frame=0):` followed by no instructions)
//!   is an undefined-symbol stub: references to it bind to the function of
//!   the same name defined in another part, or the link fails with
//!   [`LinkError::Undefined`].
//! * **Duplicate folding** — two parts defining the same name link only if
//!   their bodies are identical *after* reference resolution (the
//!   shared-runtime-prefix case: dumps of different programs agree on the
//!   runtime's code); the copies fold into one. Bodies that resolve
//!   differently — even when textually identical, since `fn#N` means
//!   different things in different parts — are a [`LinkError::Duplicate`].
//! * **Entry selection** — the merged entry is the first part whose entry
//!   function is named `main`, falling back to the first part's entry
//!   (which may itself be a stub: the resolved definition becomes the
//!   entry).
//! * **Data/globals union** — initialized data regions are unioned
//!   (identical duplicates fold, overlapping disagreements are a
//!   [`LinkError::DataConflict`]). Listings address globals absolutely, so
//!   at most one part with code may reserve globals — a second defining
//!   reservation would alias the first's slots and is a
//!   [`LinkError::GlobalsConflict`]. Pure-stub listings (header-file
//!   analogues) may additionally *declare* the layout; the merged
//!   reservation is the maximum of definition and declarations. The
//!   linker merges images, it does not relocate them.

use std::collections::HashMap;
use std::fmt;

use crate::inst::Inst;
use crate::program::{DataInit, FuncId, Function, Program};

/// Why a multi-listing link failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// No parts were given.
    Empty,
    /// `name` is defined in two parts with different bodies.
    Duplicate {
        /// The multiply-defined symbol.
        name: String,
    },
    /// A stub references `name`, but no part defines it.
    Undefined {
        /// The unresolved symbol.
        name: String,
    },
    /// A stub's declared argument count disagrees with the definition it
    /// resolved to.
    SignatureMismatch {
        /// The symbol whose stub and definition disagree.
        name: String,
    },
    /// A function body references a `fn#N` outside its own listing's
    /// function table (cross-listing references go through named stubs).
    BadReference {
        /// The function containing the reference.
        func: String,
        /// The out-of-range local function id.
        reference: u32,
    },
    /// Two parts initialize overlapping data with different bytes.
    DataConflict {
        /// Start address of the conflicting region.
        addr: u32,
    },
    /// Two parts with code both reserve globals. Listings address globals
    /// absolutely from slot 0, so two independently compiled parts'
    /// reservations alias the same slots — only a **pure-stub** listing
    /// (every function a body-less stub: the header-file analogue) may
    /// *declare* a globals layout alongside the one part that defines it.
    GlobalsConflict {
        /// The reservation of the first defining part.
        first: u32,
        /// The reservation of the second defining part.
        second: u32,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Empty => write!(f, "nothing to link"),
            LinkError::Duplicate { name } => {
                write!(f, "duplicate symbol `{name}` with differing bodies")
            }
            LinkError::Undefined { name } => write!(f, "undefined symbol `{name}`"),
            LinkError::SignatureMismatch { name } => {
                write!(
                    f,
                    "stub for `{name}` declares a different argument count than its definition"
                )
            }
            LinkError::BadReference { func, reference } => {
                write!(
                    f,
                    "`{func}` references fn#{reference} outside its own listing \
                     (declare a named stub for cross-listing calls)"
                )
            }
            LinkError::DataConflict { addr } => {
                write!(f, "conflicting data initializers at {addr:#010x}")
            }
            LinkError::GlobalsConflict { first, second } => {
                write!(
                    f,
                    "two non-stub listings reserve globals ({first} and {second} bytes): \
                     their absolute slots would alias (keep globals in one listing, or \
                     declare them from a pure-stub listing)"
                )
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Whether `f` is an undefined-symbol stub (a header with no body).
fn is_stub(f: &Function) -> bool {
    f.insts.is_empty()
}

/// Rewrites every function reference in `insts` through `map` (one entry
/// per local function of the listing that defined them).
///
/// # Errors
///
/// [`LinkError::BadReference`] when a reference falls outside the
/// listing's own function table — individual listings are *not* validated
/// before linking, so the stale id could otherwise land in range of the
/// merged table and silently call the wrong function.
fn remap_insts(insts: &[Inst], map: &[FuncId], owner: &str) -> Result<Vec<Inst>, LinkError> {
    let mut out = insts.to_vec();
    for inst in &mut out {
        if let Inst::Call { func } | Inst::CodePtr { func, .. } = inst {
            let local = func.0 as usize;
            if local >= map.len() {
                return Err(LinkError::BadReference {
                    func: owner.to_owned(),
                    reference: func.0,
                });
            }
            *func = map[local];
        }
    }
    Ok(out)
}

/// Links `parts` into one program (see the module docs for the rules).
///
/// # Errors
///
/// Returns the first [`LinkError`] found: duplicate definitions that
/// differ *after* reference resolution, unresolved or mis-declared stubs,
/// out-of-range function references, or conflicting data initializers.
pub fn merge_programs(parts: Vec<Program>) -> Result<Program, LinkError> {
    if parts.is_empty() {
        return Err(LinkError::Empty);
    }

    // Pass 1: build the merged function table (bodies still un-remapped)
    // and each part's local-id → merged-id map. Stubs get a placeholder
    // resolved in pass 2, once every definition is known; same-named
    // definitions fold tentatively onto the first one, with the semantic
    // equality check deferred to pass 4 (raw bodies cannot be compared —
    // their `fn#N` references mean different things in different parts).
    const UNRESOLVED: u32 = u32::MAX;
    let mut functions: Vec<Function> = Vec::new();
    let mut by_name: HashMap<String, FuncId> = HashMap::new();
    let mut maps: Vec<Vec<FuncId>> = Vec::with_capacity(parts.len());
    let mut stub_names: Vec<Vec<Option<String>>> = Vec::with_capacity(parts.len());
    let mut folds: Vec<(u32, usize, usize)> = Vec::new(); // (kept id, part, fn)
    for (pi, part) in parts.iter().enumerate() {
        let mut map = Vec::with_capacity(part.functions.len());
        let mut stubs = Vec::with_capacity(part.functions.len());
        for (fi, f) in part.functions.iter().enumerate() {
            if is_stub(f) {
                map.push(FuncId(UNRESOLVED));
                stubs.push(Some(f.name.clone()));
                continue;
            }
            stubs.push(None);
            match by_name.get(&f.name) {
                Some(&kept) => {
                    let k = &functions[kept.0 as usize];
                    if k.frame_size == f.frame_size && k.num_args == f.num_args {
                        map.push(kept);
                        folds.push((kept.0, pi, fi));
                    } else {
                        return Err(LinkError::Duplicate {
                            name: f.name.clone(),
                        });
                    }
                }
                None => {
                    let id = FuncId(functions.len() as u32);
                    by_name.insert(f.name.clone(), id);
                    map.push(id);
                    functions.push(f.clone());
                }
            }
        }
        maps.push(map);
        stub_names.push(stubs);
    }

    // Pass 2: resolve stubs by name, holding each to the argument count
    // it declared (a stub's frame size is ignored — frames belong to the
    // definition, not the call contract).
    for (pi, (map, stubs)) in maps.iter_mut().zip(&stub_names).enumerate() {
        for (fi, (slot, stub)) in map.iter_mut().zip(stubs).enumerate() {
            if let Some(name) = stub {
                let resolved = *by_name
                    .get(name)
                    .ok_or_else(|| LinkError::Undefined { name: name.clone() })?;
                if parts[pi].functions[fi].num_args != functions[resolved.0 as usize].num_args {
                    return Err(LinkError::SignatureMismatch { name: name.clone() });
                }
                *slot = resolved;
            }
        }
    }

    // Pass 3: rewrite every kept body's function references through its
    // defining part's map.
    let mut owner: Vec<Option<usize>> = vec![None; functions.len()];
    for (pi, part) in parts.iter().enumerate() {
        for (fi, f) in part.functions.iter().enumerate() {
            if !is_stub(f) {
                let id = maps[pi][fi].0 as usize;
                owner[id].get_or_insert(pi);
            }
        }
    }
    for (id, f) in functions.iter_mut().enumerate() {
        let map = &maps[owner[id].expect("every kept function has a defining part")];
        f.insts = remap_insts(&f.insts, map, &f.name)?;
    }

    // Pass 4: verify every tentative fold *semantically* — the duplicate's
    // body, remapped through its own part's map, must equal the kept
    // (already remapped) body. Textually identical bodies whose `fn#N`
    // references resolve to different functions are rejected here; bodies
    // that differ only in local numbering but resolve identically fold.
    for &(kept, pi, fi) in &folds {
        let dup = &parts[pi].functions[fi];
        let remapped = remap_insts(&dup.insts, &maps[pi], &dup.name)?;
        if remapped != functions[kept as usize].insts {
            return Err(LinkError::Duplicate {
                name: dup.name.clone(),
            });
        }
    }

    // Entry: the first part whose entry resolves to `main`, else the
    // first part's resolved entry. Stub entries resolve through the stub
    // (pass 2 already bound them); an out-of-range entry id is an error,
    // never a silent fall-back to an arbitrary function.
    let resolve_entry = |pi: usize| -> Option<FuncId> {
        let local = parts[pi].entry.0 as usize;
        (local < maps[pi].len()).then(|| maps[pi][local])
    };
    let entry = match (0..parts.len())
        .filter_map(|pi| resolve_entry(pi).filter(|e| functions[e.0 as usize].name == "main"))
        .next()
    {
        Some(main) => main,
        None => resolve_entry(0).ok_or(LinkError::BadReference {
            func: "<entry of the first listing>".to_owned(),
            reference: parts[0].entry.0,
        })?,
    };

    // Globals: listings address their globals absolutely from slot 0, so
    // two parts that each *define* code and reserve globals would alias
    // each other's slots — silently, since the union is just a size. Only
    // a pure-stub listing (the header-file analogue) may carry a globals
    // reservation alongside the one defining part: its reservation is a
    // layout *declaration*, and the max below keeps declaration and
    // definition honest with each other.
    let mut defined_globals: Option<u32> = None;
    for part in &parts {
        if part.globals_size > 0 && !part.functions.iter().all(is_stub) {
            if let Some(first) = defined_globals {
                return Err(LinkError::GlobalsConflict {
                    first,
                    second: part.globals_size,
                });
            }
            defined_globals = Some(part.globals_size);
        }
    }

    // Data union with conflict detection; globals reservation is the max.
    // Ranges are compared in u64 — a data line near the top of the address
    // space must not wrap `addr + len` into a false non-overlap.
    let mut data: Vec<DataInit> = Vec::new();
    for init in parts.iter().flat_map(|p| &p.data) {
        let lo = u64::from(init.addr);
        let hi = lo + init.bytes.len() as u64;
        let mut duplicate = false;
        for seen in &data {
            let s_lo = u64::from(seen.addr);
            let s_hi = s_lo + seen.bytes.len() as u64;
            if seen.addr == init.addr && seen.bytes == init.bytes {
                duplicate = true;
                break;
            }
            if lo < s_hi && s_lo < hi {
                return Err(LinkError::DataConflict {
                    addr: init.addr.max(seen.addr),
                });
            }
        }
        if !duplicate {
            data.push(init.clone());
        }
    }

    Ok(Program {
        functions,
        entry,
        globals_size: parts.iter().map(|p| p.globals_size).max().unwrap_or(0),
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::reg::Reg;

    fn leaf(name: &str, value: u32) -> Function {
        let mut f = FunctionBuilder::new(name, 0);
        f.li(Reg::A0, value);
        f.ret();
        f.finish()
    }

    fn main_calling(callee: FuncId) -> Function {
        let mut f = FunctionBuilder::new("main", 0);
        f.call(callee);
        f.halt();
        f.finish()
    }

    fn stub(name: &str) -> Function {
        Function {
            name: name.to_owned(),
            insts: Vec::new(),
            frame_size: 0,
            num_args: 0,
        }
    }

    #[test]
    fn stub_resolves_against_other_part() {
        // main.s: main calls fn#1, declared as a stub for `double_it`.
        let main_part = Program::with_entry(vec![main_calling(FuncId(1)), stub("double_it")]);
        let lib_part = Program::with_entry(vec![leaf("double_it", 7)]);
        let merged = merge_programs(vec![main_part, lib_part]).expect("links");
        assert_eq!(merged.validate(), Ok(()));
        assert_eq!(merged.functions.len(), 2);
        assert_eq!(merged.functions[0].name, "main");
        assert_eq!(merged.functions[1].name, "double_it");
        assert_eq!(
            merged.functions[0].insts[0],
            Inst::Call { func: FuncId(1) },
            "the stub reference binds to the lib definition"
        );
        assert_eq!(merged.entry, FuncId(0));
    }

    #[test]
    fn references_are_renumbered_across_parts() {
        // Part 0: a lone library function. Part 1: main + its own helper,
        // locally fn#0/fn#1 — both shift by one in the merged table.
        let lib = Program::with_entry(vec![leaf("helper_a", 1)]);
        let mut prog = Program::with_entry(vec![main_calling(FuncId(1)), leaf("helper_b", 2)]);
        prog.entry = FuncId(0);
        let merged = merge_programs(vec![lib, prog]).expect("links");
        assert_eq!(merged.validate(), Ok(()));
        let (main_id, main_fn) = merged.function_named("main").expect("main kept");
        assert_eq!(
            main_fn.insts[0],
            Inst::Call { func: FuncId(2) },
            "local fn#1 remaps to the merged helper_b slot"
        );
        assert_eq!(merged.entry, main_id, "entry follows the part with main");
    }

    #[test]
    fn identical_duplicates_fold_differing_ones_error() {
        let a = Program::with_entry(vec![main_calling(FuncId(1)), leaf("shared", 3)]);
        let b = Program::with_entry(vec![leaf("shared", 3)]);
        let merged = merge_programs(vec![a.clone(), b]).expect("identical bodies fold");
        assert_eq!(merged.functions.len(), 2);

        let conflicting = Program::with_entry(vec![leaf("shared", 4)]);
        assert_eq!(
            merge_programs(vec![a, conflicting]),
            Err(LinkError::Duplicate {
                name: "shared".to_owned()
            })
        );
    }

    /// A caller function `name` whose body is exactly `call callee; ret`.
    fn caller(name: &str, callee: FuncId) -> Function {
        let mut f = FunctionBuilder::new(name, 0);
        f.call(callee);
        f.ret();
        f.finish()
    }

    #[test]
    fn duplicate_folding_is_semantic_not_textual() {
        // Textually identical bodies whose `fn#1` references resolve to
        // *different* helpers must not silently fold.
        let a = Program::with_entry(vec![caller("shared", FuncId(1)), leaf("helper_a", 1)]);
        let b = Program::with_entry(vec![caller("shared", FuncId(1)), leaf("helper_b", 2)]);
        assert_eq!(
            merge_programs(vec![a, b]),
            Err(LinkError::Duplicate {
                name: "shared".to_owned()
            })
        );

        // Conversely: bodies that differ in local numbering but resolve to
        // the same merged callee fold cleanly.
        let c = Program::with_entry(vec![caller("shared", FuncId(1)), leaf("helper", 1)]);
        let d = Program::with_entry(vec![
            leaf("other", 9),
            caller("shared", FuncId(2)), // locally fn#2 …
            leaf("helper", 1),           // … which is the same `helper`
        ]);
        let merged = merge_programs(vec![c, d]).expect("semantically equal bodies fold");
        let shared = merged.function_named("shared").expect("kept").1;
        let helper_id = merged.function_named("helper").expect("kept").0;
        assert_eq!(shared.insts[0], Inst::Call { func: helper_id });
    }

    #[test]
    fn out_of_range_references_are_rejected() {
        // parse_program does not validate parts, so a stale `call fn#5`
        // could land in range of the merged table — the linker must reject
        // it rather than silently binding it to an unrelated function.
        let broken = Program::with_entry(vec![main_calling(FuncId(5))]);
        let filler = Program::with_entry(vec![
            leaf("a", 1),
            leaf("b", 2),
            leaf("c", 3),
            leaf("d", 4),
            leaf("e", 5),
            leaf("f", 6),
        ]);
        assert_eq!(
            merge_programs(vec![broken, filler]),
            Err(LinkError::BadReference {
                func: "main".to_owned(),
                reference: 5
            })
        );
    }

    #[test]
    fn stub_signature_mismatch_is_rejected() {
        let mut wrong = stub("double_it");
        wrong.num_args = 2;
        let main_part = Program::with_entry(vec![main_calling(FuncId(1)), wrong]);
        let mut lib_fn = leaf("double_it", 7);
        lib_fn.num_args = 1;
        let lib_part = Program::with_entry(vec![lib_fn]);
        assert_eq!(
            merge_programs(vec![main_part, lib_part]),
            Err(LinkError::SignatureMismatch {
                name: "double_it".to_owned()
            })
        );
    }

    #[test]
    fn stub_entry_resolves_through_the_stub() {
        // The first listing's entry is a body-less stub for `boot`,
        // defined in the second; neither entry is named `main`. The
        // merged entry must be `boot`'s definition, not fn#0.
        let first = Program::with_entry(vec![stub("boot"), leaf("aux", 1)]);
        let second = Program::with_entry(vec![leaf("boot", 5)]);
        let merged = merge_programs(vec![first, second]).expect("links");
        let (boot, _) = merged.function_named("boot").expect("boot kept");
        assert_eq!(merged.entry, boot);
        assert_eq!(merged.validate(), Ok(()));
    }

    #[test]
    fn undefined_stub_is_an_error() {
        let p = Program::with_entry(vec![main_calling(FuncId(1)), stub("missing")]);
        assert_eq!(
            merge_programs(vec![p]),
            Err(LinkError::Undefined {
                name: "missing".to_owned()
            })
        );
    }

    #[test]
    fn data_and_globals_union() {
        let mut a = Program::with_entry(vec![main_calling(FuncId(1)), stub("lib")]);
        a.globals_size = 16;
        a.data.push(DataInit {
            addr: 0x0080_0000,
            bytes: vec![1, 2, 3],
        });
        let mut b = Program::with_entry(vec![leaf("lib", 9)]);
        b.data.push(DataInit {
            addr: 0x0080_0000,
            bytes: vec![1, 2, 3], // identical: folds
        });
        b.data.push(DataInit {
            addr: 0x0080_0100,
            bytes: vec![4],
        });
        // A pure-stub "header" listing may over-declare the layout: its
        // reservation maxes with the defining part's without conflicting.
        let mut header = Program::with_entry(vec![stub("lib")]);
        header.globals_size = 64;
        let merged = merge_programs(vec![a.clone(), b, header]).expect("links");
        assert_eq!(merged.globals_size, 64);
        assert_eq!(merged.data.len(), 2);

        let mut clash = Program::with_entry(vec![leaf("lib", 9)]);
        clash.data.push(DataInit {
            addr: 0x0080_0001,
            bytes: vec![9, 9],
        });
        assert_eq!(
            merge_programs(vec![a, clash]),
            Err(LinkError::DataConflict { addr: 0x0080_0001 })
        );
    }

    #[test]
    fn globals_in_two_defining_parts_conflict() {
        // Both listings carry code *and* a globals reservation: each
        // compiled its globals at absolute slots from 0, so merging by max
        // would silently alias them — the old behaviour this pins out.
        let mut a = Program::with_entry(vec![main_calling(FuncId(1)), stub("lib")]);
        a.globals_size = 16;
        let mut b = Program::with_entry(vec![leaf("lib", 9)]);
        b.globals_size = 64;
        assert_eq!(
            merge_programs(vec![a.clone(), b.clone()]),
            Err(LinkError::GlobalsConflict {
                first: 16,
                second: 64
            })
        );
        // Same sizes alias just the same.
        let mut c = b.clone();
        c.globals_size = 16;
        assert_eq!(
            merge_programs(vec![a.clone(), c]),
            Err(LinkError::GlobalsConflict {
                first: 16,
                second: 16
            })
        );
        // Dropping one side's reservation links fine.
        b.globals_size = 0;
        let merged = merge_programs(vec![a, b]).expect("links");
        assert_eq!(merged.globals_size, 16);
    }

    #[test]
    fn data_overlap_near_address_space_top_is_still_detected() {
        // `addr + len` must not wrap in u32: two genuinely overlapping
        // regions at the top of the address space are a conflict, not a
        // silent union (and not a debug-build arithmetic panic).
        let mut a = Program::with_entry(vec![leaf("x", 1)]);
        a.data.push(DataInit {
            addr: u32::MAX - 1,
            bytes: vec![1, 2],
        });
        let mut b = Program::with_entry(vec![leaf("y", 2)]);
        b.data.push(DataInit {
            addr: u32::MAX,
            bytes: vec![9],
        });
        assert_eq!(
            merge_programs(vec![a, b]),
            Err(LinkError::DataConflict { addr: u32::MAX })
        );
    }

    #[test]
    fn empty_input_is_an_error() {
        assert_eq!(merge_programs(Vec::new()), Err(LinkError::Empty));
    }
}
