use std::fmt;

use crate::inst::Inst;
use crate::layout;
use crate::reg::Reg;

/// Index of a function within a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl FuncId {
    /// The code-region address representing this function (usable as a
    /// function pointer value; see [`layout::code_addr`]).
    #[must_use]
    pub fn code_addr(self) -> u32 {
        layout::code_addr(self.0)
    }
}

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fn#{}", self.0)
    }
}

/// A compiled function: a straight-line vector of µops with intra-function
/// branch targets expressed as instruction indices.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Function {
    /// Symbol name (for diagnostics and disassembly).
    pub name: String,
    /// Instruction stream.
    pub insts: Vec<Inst>,
    /// Stack frame size in bytes; the machine's calling sequence subtracts
    /// this from `sp` on entry and restores it on return.
    pub frame_size: u32,
    /// Number of register arguments the function expects (`<= 8`).
    pub num_args: u8,
}

/// An initialized data region copied into memory before execution (string
/// literals, initialized globals).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct DataInit {
    /// Destination virtual address.
    pub addr: u32,
    /// Bytes to place there.
    pub bytes: Vec<u8>,
}

/// A complete executable image for the simulator.
///
/// `Hash` covers the full image — functions (names, bodies, frames), the
/// entry point, the globals reservation and initialized data — so a hash
/// of a `Program` is a content fingerprint of everything execution can
/// observe (the basis of `hardbound-exec`'s `ProgramId`).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Program {
    /// All functions; [`FuncId`] indexes this vector.
    pub functions: Vec<Function>,
    /// Entry function (conventionally `main`).
    pub entry: FuncId,
    /// Bytes of global data reserved at [`layout::GLOBALS_BASE`].
    pub globals_size: u32,
    /// Initialized data regions.
    pub data: Vec<DataInit>,
}

/// Error found by [`Program::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValidateError {
    /// The entry [`FuncId`] does not exist.
    BadEntry(FuncId),
    /// A branch or jump targets an instruction index outside its function.
    BadBranchTarget {
        /// Offending function.
        func: FuncId,
        /// Instruction index of the branch.
        inst: usize,
        /// The out-of-range target.
        target: u32,
    },
    /// A call references a function that does not exist.
    BadCallee {
        /// Offending function.
        func: FuncId,
        /// Instruction index of the call.
        inst: usize,
        /// The nonexistent callee.
        callee: FuncId,
    },
    /// A function declares more register arguments than the ABI provides.
    TooManyArgs {
        /// Offending function.
        func: FuncId,
        /// Declared argument count.
        num_args: u8,
    },
    /// A function's frame size is not 8-byte aligned (the calling sequence
    /// keeps `sp` 8-byte aligned).
    MisalignedFrame {
        /// Offending function.
        func: FuncId,
        /// Declared frame size.
        frame_size: u32,
    },
    /// A function body is empty or can fall off its end (last instruction
    /// is not an unconditional transfer or halt-style µop).
    FallsOffEnd {
        /// Offending function.
        func: FuncId,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::BadEntry(id) => write!(f, "entry {id} does not exist"),
            ValidateError::BadBranchTarget { func, inst, target } => {
                write!(f, "{func} inst {inst}: branch target {target} out of range")
            }
            ValidateError::BadCallee { func, inst, callee } => {
                write!(f, "{func} inst {inst}: call to nonexistent {callee}")
            }
            ValidateError::TooManyArgs { func, num_args } => {
                write!(
                    f,
                    "{func}: {num_args} register arguments exceeds ABI limit of 8"
                )
            }
            ValidateError::MisalignedFrame { func, frame_size } => {
                write!(f, "{func}: frame size {frame_size} is not 8-byte aligned")
            }
            ValidateError::FallsOffEnd { func } => {
                write!(f, "{func}: control can fall off the end of the function")
            }
        }
    }
}

impl std::error::Error for ValidateError {}

impl Program {
    /// Builds a program whose entry point is the *first* function.
    #[must_use]
    pub fn with_entry(functions: Vec<Function>) -> Program {
        Program {
            functions,
            entry: FuncId(0),
            globals_size: 0,
            data: Vec::new(),
        }
    }

    /// The function named `name`, if any.
    #[must_use]
    pub fn function_named(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId(i as u32), f))
    }

    /// The function for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range; validated programs never do this.
    #[must_use]
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.0 as usize]
    }

    /// Total number of µops in the image (static size).
    #[must_use]
    pub fn static_uop_count(&self) -> usize {
        self.functions.iter().map(|f| f.insts.len()).sum()
    }

    /// Checks structural invariants: entry exists, every branch lands in its
    /// function, every callee exists, frames are aligned, functions end in
    /// an unconditional control transfer.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateError`] found.
    pub fn validate(&self) -> Result<(), ValidateError> {
        if self.entry.0 as usize >= self.functions.len() {
            return Err(ValidateError::BadEntry(self.entry));
        }
        for (fi, func) in self.functions.iter().enumerate() {
            let id = FuncId(fi as u32);
            if func.num_args as usize > Reg::NUM_ARG_REGS {
                return Err(ValidateError::TooManyArgs {
                    func: id,
                    num_args: func.num_args,
                });
            }
            if func.frame_size % 8 != 0 {
                return Err(ValidateError::MisalignedFrame {
                    func: id,
                    frame_size: func.frame_size,
                });
            }
            let n = func.insts.len() as u32;
            for (ii, inst) in func.insts.iter().enumerate() {
                match *inst {
                    Inst::Branch { target, .. } | Inst::Jump { target } if target >= n => {
                        return Err(ValidateError::BadBranchTarget {
                            func: id,
                            inst: ii,
                            target,
                        });
                    }
                    Inst::Call { func: callee } | Inst::CodePtr { func: callee, .. }
                        if callee.0 as usize >= self.functions.len() =>
                    {
                        return Err(ValidateError::BadCallee {
                            func: id,
                            inst: ii,
                            callee,
                        });
                    }
                    _ => {}
                }
            }
            let terminated = matches!(
                func.insts.last(),
                Some(
                    Inst::Ret
                        | Inst::Jump { .. }
                        | Inst::Sys {
                            call: crate::inst::SysCall::Halt | crate::inst::SysCall::Abort
                        }
                )
            );
            if !terminated {
                return Err(ValidateError::FallsOffEnd { func: id });
            }
        }
        Ok(())
    }

    /// Renders the whole program as annotated assembly text.
    ///
    /// The output fully round-trips through
    /// [`crate::asm::parse_program`]: the entry point, the globals
    /// reservation, and initialized data ride along as structured `;`
    /// comments, so `hbrun --disasm prog.cb > prog.s && hbrun prog.s`
    /// reproduces the program image.
    #[must_use]
    pub fn disassemble(&self) -> String {
        let mut out = String::new();
        let _ = self.write_listing(&mut out);
        out
    }

    /// Streams the annotated assembly listing of [`Program::disassemble`]
    /// into any [`std::fmt::Write`] sink, without materializing the string.
    ///
    /// Because the listing fully round-trips through
    /// [`crate::asm::parse_program`], its text uniquely determines the
    /// program image — which makes it a *pinned serialization* of the
    /// program: consumers that need a toolchain-stable byte encoding (the
    /// corpus service's persistent `ProgramId` fingerprints, the `hbserve`
    /// wire protocol) hash or ship exactly these bytes. Changing this
    /// format changes every persisted program fingerprint.
    ///
    /// # Errors
    ///
    /// Propagates errors from the sink (infallible for `String`).
    pub fn write_listing<W: std::fmt::Write>(&self, out: &mut W) -> std::fmt::Result {
        writeln!(out, "; entry: {}", self.entry)?;
        if self.globals_size != 0 {
            writeln!(out, "; globals: {}", self.globals_size)?;
        }
        for init in &self.data {
            write!(out, "; data {:#010x}:", init.addr)?;
            for b in &init.bytes {
                write!(out, " {b:02x}")?;
            }
            writeln!(out)?;
        }
        for (fi, func) in self.functions.iter().enumerate() {
            writeln!(
                out,
                "{} <{}> (args={}, frame={}):",
                FuncId(fi as u32),
                func.name,
                func.num_args,
                func.frame_size
            )?;
            for (ii, inst) in func.insts.iter().enumerate() {
                writeln!(out, "  {ii:4}: {inst}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, CmpOp, Operand, SysCall, Width};

    fn halt_fn(name: &str) -> Function {
        Function {
            name: name.to_owned(),
            insts: vec![Inst::Sys {
                call: SysCall::Halt,
            }],
            frame_size: 0,
            num_args: 0,
        }
    }

    #[test]
    fn validate_accepts_minimal_program() {
        let p = Program::with_entry(vec![halt_fn("main")]);
        assert_eq!(p.validate(), Ok(()));
        assert_eq!(p.static_uop_count(), 1);
    }

    #[test]
    fn validate_rejects_bad_entry() {
        let mut p = Program::with_entry(vec![halt_fn("main")]);
        p.entry = FuncId(3);
        assert_eq!(p.validate(), Err(ValidateError::BadEntry(FuncId(3))));
    }

    #[test]
    fn validate_rejects_out_of_range_branch() {
        let mut f = halt_fn("main");
        f.insts.insert(0, Inst::Jump { target: 9 });
        let p = Program::with_entry(vec![f]);
        assert!(matches!(
            p.validate(),
            Err(ValidateError::BadBranchTarget { target: 9, .. })
        ));
    }

    #[test]
    fn validate_rejects_bad_callee() {
        let mut f = halt_fn("main");
        f.insts.insert(0, Inst::Call { func: FuncId(5) });
        let p = Program::with_entry(vec![f]);
        assert!(matches!(
            p.validate(),
            Err(ValidateError::BadCallee {
                callee: FuncId(5),
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_falling_off_end() {
        let f = Function {
            name: "f".into(),
            insts: vec![Inst::Li {
                rd: Reg::A0,
                imm: 1,
            }],
            frame_size: 0,
            num_args: 0,
        };
        let p = Program::with_entry(vec![f]);
        assert!(matches!(
            p.validate(),
            Err(ValidateError::FallsOffEnd { .. })
        ));
    }

    #[test]
    fn validate_rejects_misaligned_frame() {
        let mut f = halt_fn("main");
        f.frame_size = 12;
        let p = Program::with_entry(vec![f]);
        assert!(matches!(
            p.validate(),
            Err(ValidateError::MisalignedFrame { .. })
        ));
    }

    #[test]
    fn validate_rejects_too_many_args() {
        let mut f = halt_fn("main");
        f.num_args = 9;
        let p = Program::with_entry(vec![f]);
        assert!(matches!(
            p.validate(),
            Err(ValidateError::TooManyArgs { .. })
        ));
    }

    #[test]
    fn function_lookup_by_name() {
        let p = Program::with_entry(vec![halt_fn("main"), halt_fn("helper")]);
        let (id, f) = p.function_named("helper").expect("helper exists");
        assert_eq!(id, FuncId(1));
        assert_eq!(f.name, "helper");
        assert!(p.function_named("absent").is_none());
    }

    #[test]
    fn disassembly_contains_all_functions() {
        let mut f = halt_fn("main");
        f.insts.insert(
            0,
            Inst::Bin {
                op: BinOp::Add,
                rd: Reg::A0,
                rs1: Reg::A1,
                rs2: Operand::Imm(4),
            },
        );
        f.insts.insert(
            1,
            Inst::Branch {
                op: CmpOp::Eq,
                rs1: Reg::A0,
                rs2: Operand::Reg(Reg::ZERO),
                target: 2,
            },
        );
        let p = Program::with_entry(vec![f, halt_fn("aux")]);
        let text = p.disassemble();
        assert!(text.contains("<main>"));
        assert!(text.contains("<aux>"));
        assert!(text.contains("add"));

        // Word access helper also exercised here for Width coverage.
        assert_eq!(Width::Word.bytes(), 4);
    }
}
