//! Smoke tests: every Olden port compiles and runs cleanly in every mode
//! and under every pointer encoding, with identical observable behaviour.

use hardbound_compiler::Mode;
use hardbound_core::PointerEncoding;
use hardbound_runtime::compile_and_run;
use hardbound_workloads::{all, Scale};

#[test]
fn workloads_agree_across_modes() {
    for w in all(Scale::Smoke) {
        let reference = compile_and_run(&w.source, Mode::Baseline, PointerEncoding::Intern4)
            .unwrap_or_else(|e| panic!("{}: compile failed: {e}", w.name));
        assert_eq!(
            reference.trap, None,
            "{}: baseline trapped: {:?}",
            w.name, reference.trap
        );
        assert!(
            !reference.ints.is_empty(),
            "{}: no checksum printed",
            w.name
        );
        assert_eq!(reference.exit_code, Some(0), "{}", w.name);
        for mode in [
            Mode::MallocOnly,
            Mode::HardBound,
            Mode::SoftBound,
            Mode::ObjectTable,
        ] {
            let out = compile_and_run(&w.source, mode, PointerEncoding::Intern4)
                .unwrap_or_else(|e| panic!("{} ({mode}): compile failed: {e}", w.name));
            assert_eq!(
                out.trap, None,
                "{} ({mode}) trapped: {:?}",
                w.name, out.trap
            );
            assert_eq!(
                out.ints, reference.ints,
                "{} ({mode}): checksum differs",
                w.name
            );
        }
    }
}

#[test]
fn workloads_agree_across_encodings() {
    for w in all(Scale::Smoke) {
        let mut checks = Vec::new();
        for enc in PointerEncoding::ALL {
            let out = compile_and_run(&w.source, Mode::HardBound, enc)
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert_eq!(out.trap, None, "{} ({enc}) trapped: {:?}", w.name, out.trap);
            checks.push(out.ints.clone());
        }
        assert!(
            checks.windows(2).all(|p| p[0] == p[1]),
            "{}: encodings disagree: {checks:?}",
            w.name
        );
    }
}

#[test]
fn hardbound_adds_bounded_overhead_on_smoke_inputs() {
    // Not a performance assertion per se — just that the instrumented run
    // exercises the HardBound machinery (setbounds, checks, tag traffic).
    for w in all(Scale::Smoke) {
        let base = compile_and_run(&w.source, Mode::Baseline, PointerEncoding::Intern4).unwrap();
        let hb = compile_and_run(&w.source, Mode::HardBound, PointerEncoding::Intern4).unwrap();
        assert!(
            hb.stats.setbound_uops > 0,
            "{}: no setbound executed",
            w.name
        );
        assert!(hb.stats.bounds_checks > 0, "{}: no bounds checks", w.name);
        // Every memory op to a page holding tagged words consults the tag
        // metadata; tag-free pages skip it entirely (the metadata fast
        // path), so the count is bounded by — not equal to — the op count.
        assert!(
            hb.stats.hierarchy.tag_accesses > 0,
            "{}: pointer-bearing pages must generate tag traffic",
            w.name
        );
        assert!(
            hb.stats.hierarchy.tag_accesses <= hb.stats.loads + hb.stats.stores,
            "{}: at most one tag access per memory op",
            w.name
        );
        assert!(
            hb.stats.cycles() >= base.stats.cycles(),
            "{}: protection cannot be faster than baseline",
            w.name
        );
    }
}
