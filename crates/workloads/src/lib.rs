//! The Olden benchmark ports used by the HardBound evaluation (paper §5.1:
//! "We chose the Olden benchmarks for our performance evaluation because
//! they are pointer intensive and have been used to evaluate important
//! prior works").
//!
//! Each [`Workload`] carries Cb source (see [`sources`] for the individual
//! kernels) parameterized at one of two [`Scale`]s: `Smoke` for fast unit
//! tests and `Full` for the figure-regenerating benchmark harness. Every
//! program prints one deterministic checksum, so runs can be validated
//! across instrumentation modes and pointer encodings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod sources;

/// Input scale for a workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny inputs for unit tests (each run well under a second).
    Smoke,
    /// Evaluation inputs for the Figure 5/6/7 harness.
    Full,
}

/// A benchmark program ready to compile.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name as used in the paper's figures.
    pub name: &'static str,
    /// Cb source (runtime library not included; link with
    /// `hardbound_runtime::link`).
    pub source: String,
}

/// All nine Olden ports, in the paper's figure order.
#[must_use]
pub fn all(scale: Scale) -> Vec<Workload> {
    use Scale::{Full, Smoke};
    let w = |name, source| Workload { name, source };
    match scale {
        Smoke => vec![
            w("bh", sources::bh(24, 1)),
            w("bisort", sources::bisort(63)),
            w("em3d", sources::em3d(24, 3, 2)),
            w("health", sources::health(3, 8)),
            w("mst", sources::mst(24)),
            w("perimeter", sources::perimeter(4)),
            w("power", sources::power(2, 2, 2, 2)),
            w("treeadd", sources::treeadd(6, 2)),
            w("tsp", sources::tsp(24)),
        ],
        Full => vec![
            w("bh", sources::bh(160, 2)),
            w("bisort", sources::bisort(4095)),
            w("em3d", sources::em3d(300, 16, 4)),
            w("health", sources::health(6, 50)),
            w("mst", sources::mst(320)),
            w("perimeter", sources::perimeter(6)),
            w("power", sources::power(4, 8, 8, 4)),
            w("treeadd", sources::treeadd(12, 12)),
            w("tsp", sources::tsp(400)),
        ],
    }
}

/// Looks up one workload by name.
#[must_use]
pub fn by_name(name: &str, scale: Scale) -> Option<Workload> {
    all(scale).into_iter().find(|w| w.name == name)
}

/// The paper's published Figure 7 reference values (relative runtimes),
/// reproduced verbatim so the comparison harness can print them alongside
/// our measurements.
pub mod published {
    /// Benchmark order used by every row table here and in the paper.
    pub const BENCHMARKS: [&str; 9] = [
        "bh",
        "bisort",
        "em3d",
        "health",
        "mst",
        "perimeter",
        "power",
        "treeadd",
        "tsp",
    ];

    /// JK/RL/DA published relative runtimes (Fig. 7 col. 1).
    pub const JK_RL_DA: [f64; 9] = [1.00, 1.00, 1.68, 1.44, 1.26, 0.99, 1.00, 0.98, 1.03];

    /// CCured published relative runtimes (Fig. 7 col. 2).
    pub const CCURED: [f64; 9] = [1.44, 1.09, 1.45, 1.07, 1.87, 1.10, 1.29, 1.15, 1.06];

    /// CCured µop inflation under the paper's simulator (Fig. 7 col. 6).
    pub const CCURED_SIM_UOPS: [f64; 9] = [1.74, 1.22, 1.64, 1.23, 1.39, 1.58, 1.80, 1.16, 1.09];

    /// CCured runtime under the paper's simulator (Fig. 7 col. 7).
    pub const CCURED_SIM_RUNTIME: [f64; 9] = [1.72, 1.20, 1.31, 1.11, 1.06, 1.51, 1.79, 1.09, 1.07];

    /// HardBound external 4-bit encoding (Fig. 7 col. 8).
    pub const HB_EXTERN4: [f64; 9] = [1.22, 1.01, 1.18, 1.17, 1.16, 1.02, 1.05, 1.03, 1.02];

    /// HardBound internal 4-bit encoding (Fig. 7 col. 9).
    pub const HB_INTERN4: [f64; 9] = [1.22, 1.02, 1.04, 1.20, 1.07, 1.01, 1.05, 1.03, 1.01];

    /// HardBound internal 11-bit encoding (Fig. 7 col. 10).
    pub const HB_INTERN11: [f64; 9] = [1.14, 1.02, 1.02, 1.15, 1.05, 1.01, 1.05, 1.03, 1.01];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_workloads_at_each_scale() {
        for scale in [Scale::Smoke, Scale::Full] {
            let ws = all(scale);
            assert_eq!(ws.len(), 9);
            let names: Vec<_> = ws.iter().map(|w| w.name).collect();
            assert_eq!(names, published::BENCHMARKS.to_vec());
        }
    }

    #[test]
    fn by_name_finds_each() {
        for name in published::BENCHMARKS {
            assert!(by_name(name, Scale::Smoke).is_some(), "{name}");
        }
        assert!(by_name("nope", Scale::Smoke).is_none());
    }

    #[test]
    fn sources_are_fully_substituted() {
        for w in all(Scale::Full) {
            assert!(
                !w.source.contains('@'),
                "{} has unsubstituted params",
                w.name
            );
            assert!(
                w.source.contains("print_int"),
                "{} must print a checksum",
                w.name
            );
        }
    }

    #[test]
    fn published_tables_are_consistent() {
        assert_eq!(published::JK_RL_DA.len(), published::BENCHMARKS.len());
        // Published averages (paper Fig. 7 bottom row: 1.13 and 1.05; the
        // paper's "Average" row is slightly below the arithmetic mean of
        // the printed cells, so allow loose tolerance).
        let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((avg(&published::JK_RL_DA) - 1.13).abs() < 0.04);
        assert!((avg(&published::HB_INTERN11) - 1.05).abs() < 0.04);
    }
}
