//! Cb sources of the nine Olden benchmark ports.
//!
//! The Olden suite (Rogers et al.) is the paper's benchmark set (§5.1):
//! pointer-intensive programs over dynamic data structures — trees, lists,
//! quadtrees and bipartite graphs. These ports keep each benchmark's data
//! structure and access pattern (which is what drives HardBound's
//! overheads) while scaling inputs to simulator-friendly sizes and
//! replacing floating point with the runtime's 16.16 fixed-point helpers
//! (the ISA is integer-only; see DESIGN.md substitutions).
//!
//! Every program prints a deterministic checksum with `print_int` and
//! exits 0, so cross-mode and cross-encoding runs can assert identical
//! behaviour.

/// `treeadd`: build a balanced binary tree, repeatedly sum it (recursive
/// tree walk; the simplest pointer-chasing kernel).
pub fn treeadd(depth: u32, iters: u32) -> String {
    template(
        r#"
struct tree { int val; struct tree *left; struct tree *right; };

struct tree *build(int depth) {
    if (depth <= 0) return 0;
    struct tree *t = (struct tree*)malloc(sizeof(struct tree));
    t->val = depth;
    t->left = build(depth - 1);
    t->right = build(depth - 1);
    return t;
}

int addtree(struct tree *t) {
    if (t == 0) return 0;
    return t->val + addtree(t->left) + addtree(t->right);
}

int main() {
    struct tree *root = build(@DEPTH@);
    int total = 0;
    for (int i = 0; i < @ITERS@; i = i + 1) {
        total = total + addtree(root);
    }
    print_int(total);
    return 0;
}
"#,
        &[("@DEPTH@", depth), ("@ITERS@", iters)],
    )
}

/// `bisort`: bitonic sort over a balanced binary tree (Olden's
/// value-swapping `bimerge`/`bisort` recursion).
pub fn bisort(size: u32) -> String {
    template(
        r#"
struct node { int value; struct node *left; struct node *right; };

struct node *rand_tree(int size) {
    if (size < 1) return 0;
    struct node *n = (struct node*)malloc(sizeof(struct node));
    n->value = rand_range(65536);
    int rest = size - 1;
    n->left = rand_tree(rest / 2);
    n->right = rand_tree(rest - rest / 2);
    return n;
}

int bimerge(struct node *root, int spr_val, int dir) {
    int rv = root->value;
    int rightexchange = rv > spr_val;
    if (dir) rightexchange = 1 - rightexchange;
    if (rightexchange) {
        root->value = spr_val;
        spr_val = rv;
    }
    struct node *pl = root->left;
    struct node *pr = root->right;
    while (pl != 0 && pr != 0) {
        int lv = pl->value;
        int rv2 = pr->value;
        int elementexchange = lv > rv2;
        if (dir) elementexchange = 1 - elementexchange;
        if (rightexchange) {
            if (elementexchange) {
                pl->value = rv2;
                pr->value = lv;
                pl = pl->left;
                pr = pr->left;
            } else {
                pl = pl->right;
                pr = pr->right;
            }
        } else {
            if (elementexchange) {
                pl->value = rv2;
                pr->value = lv;
                pl = pl->right;
                pr = pr->right;
            } else {
                pl = pl->left;
                pr = pr->left;
            }
        }
    }
    if (root->left != 0) {
        root->value = bimerge(root->left, root->value, dir);
        spr_val = bimerge(root->right, spr_val, dir);
    }
    return spr_val;
}

int bisort(struct node *root, int spr_val, int dir) {
    if (root->left == 0) {
        int rv = root->value;
        int cond = rv > spr_val;
        if (dir) cond = 1 - cond;
        if (cond) {
            root->value = spr_val;
            spr_val = rv;
        }
        return spr_val;
    }
    root->value = bisort(root->left, root->value, dir);
    spr_val = bisort(root->right, spr_val, 1 - dir);
    spr_val = bimerge(root, spr_val, dir);
    return spr_val;
}

int checksum(struct node *t, int depth) {
    if (t == 0) return 0;
    return t->value + 3 * checksum(t->left, depth + 1)
         + 7 * checksum(t->right, depth + 1);
}

int main() {
    rand_seed(17);
    struct node *root = rand_tree(@SIZE@);
    int sv = bisort(root, 0x7FFFFFFF, 0);
    sv = bisort(root, 0x7FFFFFFF, 1);
    print_int(checksum(root, 0) ^ sv);
    return 0;
}
"#,
        &[("@SIZE@", size)],
    )
}

/// `em3d`: electromagnetic wave propagation on a bipartite graph — each
/// node holds a malloc'd array of neighbor pointers and coefficients.
pub fn em3d(nodes: u32, degree: u32, iters: u32) -> String {
    template(
        r#"
struct gnode {
    int value;
    struct gnode **to;
    int *coef;
    int degree;
    struct gnode *next;
};

struct gnode *make_list(int n) {
    struct gnode *head = 0;
    for (int i = 0; i < n; i = i + 1) {
        struct gnode *g = (struct gnode*)malloc(sizeof(struct gnode));
        g->value = rand_range(1024);
        g->degree = @DEGREE@;
        g->to = (struct gnode**)malloc(@DEGREE@ * sizeof(struct gnode*));
        g->coef = (int*)malloc(@DEGREE@ * sizeof(int));
        g->next = head;
        head = g;
    }
    return head;
}

struct gnode *pick(struct gnode *list, int n) {
    int hop = rand_range(n);
    struct gnode *g = list;
    while (hop > 0) { g = g->next; hop = hop - 1; }
    return g;
}

void connect(struct gnode *from, struct gnode *other, int n) {
    struct gnode *g = from;
    while (g != 0) {
        for (int i = 0; i < g->degree; i = i + 1) {
            g->to[i] = pick(other, n);
            g->coef[i] = rand_range(7) + 1;
        }
        g = g->next;
    }
}

void relax(struct gnode *list) {
    struct gnode *g = list;
    while (g != 0) {
        int acc = g->value;
        for (int i = 0; i < g->degree; i = i + 1) {
            acc = acc - (g->coef[i] * g->to[i]->value) / 8;
        }
        g->value = acc & 0xFFFF;
        g = g->next;
    }
}

int sum(struct gnode *list) {
    int s = 0;
    struct gnode *g = list;
    while (g != 0) { s = s + g->value; g = g->next; }
    return s;
}

int main() {
    rand_seed(23);
    struct gnode *e = make_list(@NODES@);
    struct gnode *h = make_list(@NODES@);
    connect(e, h, @NODES@);
    connect(h, e, @NODES@);
    for (int t = 0; t < @ITERS@; t = t + 1) {
        relax(e);
        relax(h);
    }
    print_int(sum(e) * 3 + sum(h));
    return 0;
}
"#,
        &[("@NODES@", nodes), ("@DEGREE@", degree), ("@ITERS@", iters)],
    )
}

/// `health`: the Columbian health-care simulation — a 4-ary tree of
/// villages, each with a linked list of patients that move up the tree.
pub fn health(levels: u32, steps: u32) -> String {
    template(
        r#"
struct patient {
    int remaining;
    int hops;
    struct patient *next;
};

struct village {
    struct village *children[4];
    struct village *parent;
    struct patient *waiting;
    int level;
    int treated;
};

struct village *build(int level, struct village *parent) {
    struct village *v = (struct village*)malloc(sizeof(struct village));
    v->parent = parent;
    v->level = level;
    v->waiting = 0;
    v->treated = 0;
    for (int i = 0; i < 4; i = i + 1) {
        if (level > 1) v->children[i] = build(level - 1, v);
        else v->children[i] = 0;
    }
    return v;
}

void admit(struct village *v, struct patient *p) {
    p->next = v->waiting;
    v->waiting = p;
}

void step(struct village *v) {
    if (v == 0) return;
    for (int i = 0; i < 4; i = i + 1) step(v->children[i]);
    // New patient arrives at leaf villages with ~1/3 probability.
    if (v->level == 1 && rand_range(3) == 0) {
        struct patient *p = (struct patient*)malloc(sizeof(struct patient));
        p->remaining = rand_range(4) + 1;
        p->hops = 0;
        admit(v, p);
    }
    // Treat the waiting list: done patients are freed, hard cases are
    // referred to the parent village.
    struct patient *cur = v->waiting;
    v->waiting = 0;
    while (cur != 0) {
        struct patient *nxt = cur->next;
        cur->remaining = cur->remaining - 1;
        if (cur->remaining <= 0) {
            v->treated = v->treated + 1;
            free(cur);
        } else {
            if (rand_range(4) == 0 && v->parent != 0) {
                cur->hops = cur->hops + 1;
                admit(v->parent, cur);
            } else {
                admit(v, cur);
            }
        }
        cur = nxt;
    }
}

int total_treated(struct village *v) {
    if (v == 0) return 0;
    int s = v->treated;
    for (int i = 0; i < 4; i = i + 1) s = s + total_treated(v->children[i]);
    return s;
}

int main() {
    rand_seed(31);
    struct village *top = build(@LEVELS@, 0);
    for (int t = 0; t < @STEPS@; t = t + 1) step(top);
    print_int(total_treated(top));
    return 0;
}
"#,
        &[("@LEVELS@", levels), ("@STEPS@", steps)],
    )
}

/// `mst`: minimum spanning tree over a vertex list (Prim's algorithm; the
/// Olden original keys neighbor distances through per-vertex hash tables —
/// here a deterministic hash *function* supplies the same weights).
///
/// This port also demonstrates the paper's §5.3 `mst` change: the
/// per-vertex scratch slot is sub-bounded with an explicit `__setbound`,
/// "better expressing the intended constraints of the program".
pub fn mst(vertices: u32) -> String {
    template(
        r#"
struct vertex {
    int id;
    int mindist;
    int intree;
    int *slot;
    struct vertex *next;
};

int scratch[@VERTS@];

int weight(int i, int j) {
    int a = i < j ? i : j;
    int b = i < j ? j : i;
    return ((a * 31 + b * 17) & 0x3FFF) + 1;
}

struct vertex *make_graph(int n) {
    struct vertex *head = 0;
    for (int i = n - 1; i >= 0; i = i - 1) {
        struct vertex *v = (struct vertex*)malloc(sizeof(struct vertex));
        v->id = i;
        v->mindist = 0x7FFFFFFF;
        v->intree = 0;
        // Paper §5.3: a pointer to one element used exclusively — tighten
        // its bounds instead of carrying the whole array's.
        v->slot = __setbound(&scratch[i], sizeof(int));
        v->next = head;
        head = v;
    }
    return head;
}

int main() {
    struct vertex *graph = make_graph(@VERTS@);
    graph->intree = 1;
    graph->mindist = 0;
    struct vertex *last_added = graph;
    int total = 0;
    for (int round = 1; round < @VERTS@; round = round + 1) {
        // Relax distances against the vertex just added.
        struct vertex *v = graph;
        while (v != 0) {
            if (!v->intree) {
                int w = weight(last_added->id, v->id);
                if (w < v->mindist) v->mindist = w;
            }
            v = v->next;
        }
        // Pick the closest fringe vertex.
        struct vertex *best = 0;
        v = graph;
        while (v != 0) {
            if (!v->intree) {
                if (best == 0 || v->mindist < best->mindist) best = v;
            }
            v = v->next;
        }
        best->intree = 1;
        *(best->slot) = best->mindist;
        total = total + best->mindist;
        last_added = best;
    }
    print_int(total);
    return 0;
}
"#,
        &[("@VERTS@", vertices)],
    )
}

/// `perimeter`: quadtree image perimeter — builds a region quadtree and
/// measures the black region's perimeter by point-probing neighbors
/// through root-to-leaf walks.
pub fn perimeter(depth: u32) -> String {
    template(
        r#"
struct quad {
    int color;                 // 0 white, 1 black, 2 gray
    struct quad *children[4];  // nw, ne, sw, se
};

int world;

// The image: a filled disc.
int pixel(int x, int y) {
    int cx = world / 2;
    int cy = world / 2;
    int dx = x - cx;
    int dy = y - cy;
    int r = (world * 3) / 8;
    return dx * dx + dy * dy <= r * r;
}

struct quad *build(int x, int y, int size) {
    struct quad *q = (struct quad*)malloc(sizeof(struct quad));
    if (size == 1) {
        q->color = pixel(x, y);
        for (int i = 0; i < 4; i = i + 1) q->children[i] = 0;
        return q;
    }
    int half = size / 2;
    q->children[0] = build(x, y, half);
    q->children[1] = build(x + half, y, half);
    q->children[2] = build(x, y + half, half);
    q->children[3] = build(x + half, y + half, half);
    int all_black = 1;
    int all_white = 1;
    for (int i = 0; i < 4; i = i + 1) {
        if (q->children[i]->color != 1) all_black = 0;
        if (q->children[i]->color != 0) all_white = 0;
    }
    if (all_black) q->color = 1;
    else {
        if (all_white) q->color = 0;
        else q->color = 2;
    }
    return q;
}

// Colour at a point, via a root-to-leaf walk.
int probe(struct quad *root, int x, int y, int size) {
    if (x < 0 || y < 0 || x >= size || y >= size) return 0;
    struct quad *q = root;
    int qx = 0;
    int qy = 0;
    while (q->color == 2) {
        size = size / 2;
        int idx = 0;
        if (x >= qx + size) { idx = idx + 1; qx = qx + size; }
        if (y >= qy + size) { idx = idx + 2; qy = qy + size; }
        q = q->children[idx];
    }
    return q->color == 1;
}

// Sum, over black unit cells, of exposed edges (probing the 4 neighbors
// from the root each time — heavy pointer chasing, as in Olden).
int perim(struct quad *root, struct quad *q, int x, int y, int size) {
    if (q->color == 0) return 0;
    if (q->color == 2) {
        int half = size / 2;
        int s = perim(root, q->children[0], x, y, half);
        s = s + perim(root, q->children[1], x + half, y, half);
        s = s + perim(root, q->children[2], x, y + half, half);
        s = s + perim(root, q->children[3], x + half, y + half, half);
        return s;
    }
    // Black node of extent `size`: walk its boundary cells.
    int count = 0;
    for (int i = 0; i < size; i = i + 1) {
        if (!probe(root, x + i, y - 1, world)) count = count + 1;
        if (!probe(root, x + i, y + size, world)) count = count + 1;
        if (!probe(root, x - 1, y + i, world)) count = count + 1;
        if (!probe(root, x + size, y + i, world)) count = count + 1;
    }
    return count;
}

int main() {
    world = 1 << @DEPTH@;
    struct quad *root = build(0, 0, world);
    print_int(perim(root, root, 0, 0, world));
    return 0;
}
"#,
        &[("@DEPTH@", depth)],
    )
}

/// `power`: the power-system pricing optimization — a fixed hierarchy
/// (root → feeders → laterals → branches → leaves) swept top-down and
/// bottom-up with fixed-point arithmetic standing in for doubles.
pub fn power(feeders: u32, laterals: u32, branches: u32, iters: u32) -> String {
    template(
        r#"
struct leaf { int demand; };
struct branch { struct leaf *leaves[4]; int demand; };
struct lateral { struct branch *branches[@BRANCHES@]; int demand; };
struct feeder { struct lateral *laterals[@LATERALS@]; int demand; };
struct root_t { struct feeder *feeders[@FEEDERS@]; int demand; int price; };

struct leaf *mk_leaf() {
    struct leaf *l = (struct leaf*)malloc(sizeof(struct leaf));
    l->demand = fx_from_int(1);
    return l;
}

struct branch *mk_branch() {
    struct branch *b = (struct branch*)malloc(sizeof(struct branch));
    for (int i = 0; i < 4; i = i + 1) b->leaves[i] = mk_leaf();
    b->demand = 0;
    return b;
}

struct lateral *mk_lateral() {
    struct lateral *l = (struct lateral*)malloc(sizeof(struct lateral));
    for (int i = 0; i < @BRANCHES@; i = i + 1) l->branches[i] = mk_branch();
    l->demand = 0;
    return l;
}

struct feeder *mk_feeder() {
    struct feeder *f = (struct feeder*)malloc(sizeof(struct feeder));
    for (int i = 0; i < @LATERALS@; i = i + 1) f->laterals[i] = mk_lateral();
    f->demand = 0;
    return f;
}

// Leaves adjust demand to the price; demand aggregates upward with line
// losses; the root adjusts the price toward its capacity.
int update_leaf(struct leaf *l, int price) {
    // demand = 2 - price (clamped to [0.25, 2]) in fixed point.
    int d = fx_from_int(2) - price;
    if (d < 16384) d = 16384;
    if (d > fx_from_int(2)) d = fx_from_int(2);
    l->demand = d;
    return d;
}

int update_branch(struct branch *b, int price) {
    int s = 0;
    for (int i = 0; i < 4; i = i + 1) s = s + update_leaf(b->leaves[i], price);
    b->demand = s + fx_mul(s, 3277);   // ~5% line loss
    return b->demand;
}

int update_lateral(struct lateral *l, int price) {
    int s = 0;
    for (int i = 0; i < @BRANCHES@; i = i + 1) s = s + update_branch(l->branches[i], price);
    l->demand = s + fx_mul(s, 1638);   // ~2.5% loss
    return l->demand;
}

int update_feeder(struct feeder *f, int price) {
    int s = 0;
    for (int i = 0; i < @LATERALS@; i = i + 1) s = s + update_lateral(f->laterals[i], price);
    f->demand = s;
    return s;
}

int main() {
    struct root_t *root = (struct root_t*)malloc(sizeof(struct root_t));
    for (int i = 0; i < @FEEDERS@; i = i + 1) root->feeders[i] = mk_feeder();
    root->price = fx_from_int(1);
    int capacity = fx_from_int(@FEEDERS@ * @LATERALS@ * @BRANCHES@ * 4);
    for (int t = 0; t < @ITERS@; t = t + 1) {
        int total = 0;
        for (int i = 0; i < @FEEDERS@; i = i + 1) {
            total = total + update_feeder(root->feeders[i], root->price);
        }
        root->demand = total;
        // Price moves proportionally to excess demand.
        int excess = total - capacity;
        root->price = root->price + fx_mul(excess / (@FEEDERS@ * @LATERALS@), 655);
        if (root->price < 0) root->price = 0;
    }
    print_int(fx_to_int(root->demand) + fx_to_int(root->price) * 1000);
    return 0;
}
"#,
        &[
            ("@FEEDERS@", feeders),
            ("@LATERALS@", laterals),
            ("@BRANCHES@", branches),
            ("@ITERS@", iters),
        ],
    )
}

/// `bh`: Barnes–Hut n-body — a 2-D quadtree of bodies, center-of-mass
/// aggregation, and θ-approximate force walks, in 16.16 fixed point.
pub fn bh(bodies: u32, steps: u32) -> String {
    template(
        r#"
struct body {
    int x; int y;       // position, fx
    int vx; int vy;     // velocity, fx
    int mass;           // fx
    struct body *next;
};

struct cell {
    int is_leaf;
    struct body *b;                // when leaf
    struct cell *children[4];
    int cx; int cy; int mass;      // centre of mass, fx
    int x; int y; int size;        // region (integer grid)
};

int WORLD;

struct cell *mk_cell(int x, int y, int size) {
    struct cell *c = (struct cell*)malloc(sizeof(struct cell));
    c->is_leaf = 1;
    c->b = 0;
    for (int i = 0; i < 4; i = i + 1) c->children[i] = 0;
    c->cx = 0; c->cy = 0; c->mass = 0;
    c->x = x; c->y = y; c->size = size;
    return c;
}

int quadrant_of(struct cell *c, struct body *b) {
    int half = c->size / 2;
    int idx = 0;
    if (fx_to_int(b->x) >= c->x + half) idx = idx + 1;
    if (fx_to_int(b->y) >= c->y + half) idx = idx + 2;
    return idx;
}

void insert(struct cell *c, struct body *b) {
    while (1) {
        if (c->is_leaf) {
            if (c->b == 0) { c->b = b; return; }
            if (c->size <= 1) { b->next = c->b; c->b = b; return; }
            // Split: push the resident body down.
            struct body *old = c->b;
            c->b = 0;
            c->is_leaf = 0;
            int half = c->size / 2;
            c->children[0] = mk_cell(c->x, c->y, half);
            c->children[1] = mk_cell(c->x + half, c->y, half);
            c->children[2] = mk_cell(c->x, c->y + half, half);
            c->children[3] = mk_cell(c->x + half, c->y + half, half);
            insert(c->children[quadrant_of(c, old)], old);
        } else {
            c = c->children[quadrant_of(c, b)];
        }
    }
}

void summarize(struct cell *c) {
    if (c == 0) return;
    if (c->is_leaf) {
        struct body *b = c->b;
        while (b != 0) {
            c->mass = c->mass + b->mass;
            c->cx = c->cx + fx_mul(b->x, b->mass);
            c->cy = c->cy + fx_mul(b->y, b->mass);
            b = b->next;
        }
    } else {
        for (int i = 0; i < 4; i = i + 1) {
            summarize(c->children[i]);
            struct cell *ch = c->children[i];
            c->mass = c->mass + ch->mass;
            c->cx = c->cx + ch->cx;
            c->cy = c->cy + ch->cy;
        }
    }
    if (c->mass > 0) {
        c->cx = fx_div(c->cx, c->mass);
        c->cy = fx_div(c->cy, c->mass);
    }
}

// Accumulate acceleration on `b` from cell `c` (theta = 1: accept a cell
// when size/dist < 1).
void force(struct body *b, struct cell *c, int *ax, int *ay) {
    if (c == 0 || c->mass == 0) return;
    int dx = c->cx - b->x;
    int dy = c->cy - b->y;
    int d2 = fx_mul(dx, dx) + fx_mul(dy, dy) + 4096; // softening
    int sz2 = fx_from_int(c->size * c->size);
    if (c->is_leaf || fx_mul(sz2, 65536) < fx_mul(d2, 65536)) {
        int inv = fx_div(c->mass, d2);
        *ax = *ax + fx_mul(inv, dx) / 16;
        *ay = *ay + fx_mul(inv, dy) / 16;
    } else {
        for (int i = 0; i < 4; i = i + 1) force(b, c->children[i], ax, ay);
    }
}

int main() {
    WORLD = 64;
    rand_seed(47);
    int n = @BODIES@;
    struct body *all = (struct body*)malloc(n * sizeof(struct body));
    for (int i = 0; i < n; i = i + 1) {
        all[i].x = fx_from_int(rand_range(WORLD));
        all[i].y = fx_from_int(rand_range(WORLD));
        all[i].vx = 0;
        all[i].vy = 0;
        all[i].mass = fx_from_int(rand_range(3) + 1);
        all[i].next = 0;
    }
    for (int t = 0; t < @STEPS@; t = t + 1) {
        struct cell *root = mk_cell(0, 0, WORLD);
        for (int i = 0; i < n; i = i + 1) {
            all[i].next = 0;
            insert(root, &all[i]);
        }
        summarize(root);
        for (int i = 0; i < n; i = i + 1) {
            int ax = 0;
            int ay = 0;
            force(&all[i], root, &ax, &ay);
            all[i].vx = all[i].vx + ax;
            all[i].vy = all[i].vy + ay;
            all[i].x = all[i].x + all[i].vx / 4;
            all[i].y = all[i].y + all[i].vy / 4;
            if (all[i].x < 0) all[i].x = 0;
            if (all[i].y < 0) all[i].y = 0;
            if (all[i].x > fx_from_int(WORLD - 1)) all[i].x = fx_from_int(WORLD - 1);
            if (all[i].y > fx_from_int(WORLD - 1)) all[i].y = fx_from_int(WORLD - 1);
        }
    }
    int check = 0;
    for (int i = 0; i < n; i = i + 1) {
        check = check + fx_to_int(all[i].x) * 3 + fx_to_int(all[i].y);
    }
    print_int(check);
    return 0;
}
"#,
        &[("@BODIES@", bodies), ("@STEPS@", steps)],
    )
}

/// `tsp`: travelling salesman via the closest-point heuristic over a
/// linked list of cities with fixed-point coordinates.
pub fn tsp(cities: u32) -> String {
    template(
        r#"
struct city {
    int x; int y;        // fx
    int visited;
    struct city *next;   // all-cities list
    struct city *tour;   // tour order
};

int dist2(struct city *a, struct city *b) {
    int dx = a->x - b->x;
    int dy = a->y - b->y;
    return fx_mul(dx, dx) + fx_mul(dy, dy);
}

int main() {
    rand_seed(59);
    int n = @CITIES@;
    struct city *head = 0;
    for (int i = 0; i < n; i = i + 1) {
        struct city *c = (struct city*)malloc(sizeof(struct city));
        c->x = fx_from_int(rand_range(64));
        c->y = fx_from_int(rand_range(64));
        c->visited = 0;
        c->next = head;
        c->tour = 0;
        head = c;
    }
    // Nearest-neighbour tour.
    struct city *cur = head;
    cur->visited = 1;
    struct city *start = cur;
    int total2 = 0;
    for (int k = 1; k < n; k = k + 1) {
        struct city *best = 0;
        int bestd = 0x7FFFFFFF;
        struct city *c = head;
        while (c != 0) {
            if (!c->visited) {
                int d = dist2(cur, c);
                if (d < bestd) { bestd = d; best = c; }
            }
            c = c->next;
        }
        best->visited = 1;
        cur->tour = best;
        total2 = total2 + fx_to_int(fx_sqrt(bestd));
        cur = best;
    }
    total2 = total2 + fx_to_int(fx_sqrt(dist2(cur, start)));
    // Checksum: tour length plus a walk of the tour pointers.
    int hops = 0;
    struct city *c = start;
    while (c != 0) { hops = hops + 1; c = c->tour; }
    print_int(total2 * 100 + hops);
    return 0;
}
"#,
        &[("@CITIES@", cities)],
    )
}

fn template(body: &str, substitutions: &[(&str, u32)]) -> String {
    let mut s = body.to_owned();
    for (key, value) in substitutions {
        s = s.replace(key, &value.to_string());
    }
    debug_assert!(
        !s.contains('@'),
        "unsubstituted parameter in workload source"
    );
    s
}
